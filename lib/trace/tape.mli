(** Capture-once / replay-many trace tapes.

    The paper's verification methodology collects one memory trace per
    application and feeds it to the cache simulator at many
    configurations (§IV, Fig. 4/6).  A [Tape.t] is that trace: a
    compact, append-only columnar buffer — per event one byte address
    and one {!Cachesim.Cache.pack_access} metadata word, stored in
    chunked unboxed [int] arrays ({!bytes_per_event} = 16 on 64-bit) —
    captured from a {!Recorder} once and then replayed into any number
    of caches without re-executing the workload kernel.

    Chunks are allocated at a fixed capacity (default 65536 events),
    large enough to live on the major heap, so capture is O(1) amortized
    per event and stays off the minor collector.  Replay streams whole
    chunks through {!Cachesim.Cache.access_batch}; {!replay_fused}
    drives several caches from a single chunk walk so a multi-geometry
    sweep reads each chunk once while it is hot.

    Every chunk carries a {e partition index}, maintained at capture
    time: a coverage bitmap over {!partition_buckets} buckets of the
    granule-line number ([addr lsr granule_shift]) plus the chunk's
    min/max granule line.  The sharded walks use it to skip whole chunks
    that provably contain no line of the requested shard, and
    {!partition} builds per-shard chunk lists up front so each shard
    domain walks only its slice — in both cases bit-identical to the
    full scan, because a skipped chunk would not have changed the
    shard's sets.

    Chunks may be {e deferred}: {!Tape_io} v2 loads adopt chunks as
    (length, index, decode) triples over an mmap'd payload
    ({!append_deferred_chunk}) and the [int] arrays are only
    materialized when a walk first needs them — lock-free and
    idempotent, so concurrent shard domains may force the same chunk
    safely, and a chunk every shard skips is never decoded at all.

    Tapes are single-domain values: capture on one domain, then hand the
    (immutable-from-then-on) tape to replay jobs freely — concurrent
    {!replay}s of one tape are safe as long as nobody appends. *)

type t

val create : ?chunk_events:int -> unit -> t
(** [chunk_events] is the per-chunk capacity in events (default 65536).
    Raises [Invalid_argument] when not positive. *)

(** {2 Capture} *)

val append : t -> Event.t -> unit
(** Record one event.  Raises [Invalid_argument] on a negative address
    or on an owner/size outside the packed-word range (see
    {!Cachesim.Cache.pack_access}) — the same events a direct
    {!Cachesim.Cache.access} would reject. *)

val append_batch : t -> Event.t array -> int -> unit
(** [append_batch t events n] records [events.(0 .. n-1)] in order.
    This is the capture fast path: the whole batch is validated up
    front (so a rejected batch leaves the tape untouched) and events
    are then stored in runs split only at chunk boundaries, instead of
    re-checking the boundary and re-validating per event.  Raises
    [Invalid_argument] on a bad count, a negative address, or an
    owner/size outside the packed-word range. *)

val sink : t -> Recorder.sink
(** Per-event capture sink for {!Recorder.add_sink}. *)

val batch_sink : t -> Recorder.batch_sink
(** Chunk capture sink for {!Recorder.add_batch_sink} — the fast path
    when recording from a buffered recorder. *)

(** {2 Replay} *)

val replay : t -> Cachesim.Cache.t -> unit
(** Stream the captured events, in capture order, into [cache] via
    {!Cachesim.Cache.access_batch}.  Statistics afterwards are
    bit-identical to having traced the workload directly into the
    cache. *)

val replay_fused : t -> Cachesim.Cache.t array -> unit
(** One pass over the tape driving every cache: for each chunk, replay
    it into each cache before moving on.  Per-cache results equal
    [Array.iter (replay t) caches]; the fused walk reads each chunk from
    memory once instead of once per cache. *)

val replay_fused_sharded :
  ?skipped:int ref ->
  t -> Cachesim.Cache.t array -> shards:int -> shard:int -> unit
(** {!replay_fused} restricted to the cache lines owned by [shard] of
    [shards] (see {!Cachesim.Cache.access_batch_sharded}).  Each cache
    clamps [shards] to its own set count, so heterogeneous geometries
    neither drop nor duplicate lines.  Replaying every shard — in any
    order, or concurrently over per-shard cache replicas whose
    statistics are merged afterwards — is bit-identical to
    {!replay_fused}.

    Chunks whose partition index proves them disjoint from [shard]'s
    lines in every cache are skipped without being walked or (for
    deferred chunks) decoded; [skipped] is incremented once per skipped
    chunk.  Skipping never fires when any cache has a residency
    accumulator attached (the logical clock must then advance over every
    event), so timed replays remain exact.  Raises [Invalid_argument]
    unless [shards] is a positive power of two and
    [0 <= shard < shards]. *)

val replay_hierarchies : t -> Cachesim.Hierarchy.t array -> unit
(** Fused walk over multi-level hierarchies: for each chunk, feed it to
    each hierarchy's L1 before moving on. *)

val replay_hierarchies_sharded :
  ?skipped:int ref ->
  t -> Cachesim.Hierarchy.t array -> shards:int -> shard:int -> unit
(** Sharded fused walk over hierarchies (see
    {!Cachesim.Hierarchy.access_batch_sharded}), with the same
    index-driven chunk skipping (keyed on each hierarchy's L1 line size
    and effective shard count) and the same residency opt-out as
    {!replay_fused_sharded}. *)

(** {2 Pre-partitioned views}

    {!partition} evaluates the per-chunk shard test once, up front, and
    hands each shard the list of chunks it must walk — so [N] shard
    domains each traverse only their slice instead of re-testing (or
    rescanning) the whole tape, and a chunk no shard selects is never
    materialized.  The tape must not be appended to while views are
    alive (the usual replay contract). *)

type view
(** One shard's slice of a tape: the chunks whose partition index
    intersects the shard's bucket mask, in capture order. *)

val partition : t -> Cachesim.Cache.t array -> shards:int -> view array
(** [partition t caches ~shards] builds one view per shard for a fused
    sharded replay over [caches]; {!replay_view} of view [s] is
    bit-identical to [replay_fused_sharded t caches ~shards ~shard:s].
    The views are keyed on the caches' geometry (line size, effective
    shard count): hand {!replay_view} replicas of the same
    configurations.  Raises [Invalid_argument] unless [shards] is a
    positive power of two. *)

val partition_hierarchies :
  t -> Cachesim.Hierarchy.t array -> shards:int -> view array
(** {!partition} keyed on hierarchies (L1 line size, hierarchy-wide
    effective shard count) for {!replay_view_hierarchies}. *)

val replay_view : view -> Cachesim.Cache.t array -> unit
(** Walk one view's chunks into [caches] via
    {!Cachesim.Cache.access_batch_sharded}.  [caches] must be replicas
    of the configurations the view was partitioned for (same geometry,
    no residency attached) — the selector is recomputed and a mismatch
    raises [Invalid_argument] instead of silently dropping events. *)

val replay_view_hierarchies : view -> Cachesim.Hierarchy.t array -> unit
(** {!replay_view} over hierarchy replicas. *)

val view_shard : view -> int
val view_shards : view -> int

val view_chunks : view -> int
(** Chunks this view walks. *)

val view_events : view -> int
(** Events in the view's chunks (an upper bound on the events the shard
    actually simulates — chunks are skipped whole, events within a
    selected chunk are still filtered per set). *)

val view_chunks_skipped : view -> int
(** Chunks the partition index excluded for this shard. *)

(** {2 Inspection} *)

val length : t -> int
(** Events captured so far. *)

val chunk_events : t -> int
(** Per-chunk capacity this tape was created with. *)

val chunk_count : t -> int
(** Non-empty chunks currently held. *)

val bytes_per_event : int
(** Storage cost of one event: two machine words. *)

val allocated_bytes : t -> int
(** Total bytes of chunk storage allocated (counts the partial head
    chunk at full capacity — [allocated_bytes t / max 1 (length t)]
    is the real amortized footprint per event). *)

val granule_shift : int
(** The partition index records granule lines: [addr lsr granule_shift]
    (8-byte granules — no cache configuration has a smaller line). *)

val partition_buckets : int
(** Buckets in a chunk's coverage bitmap: a granule line [g] sets bucket
    [g land (partition_buckets - 1)]. *)

val coverage_words : int
(** Words the coverage bitmap is stored in ({!partition_buckets} /
    32 bits each) — the shape {!chunk_infos} returns and
    {!append_deferred_chunk} expects. *)

type chunk_info = {
  ci_len : int;  (** events in the chunk *)
  ci_coverage : int array;  (** {!coverage_words} words, 32 live bits each *)
  ci_min_line : int;  (** smallest granule line touched ([max_int] if none) *)
  ci_max_line : int;  (** largest granule line touched ([-1] if none) *)
}

val chunk_infos : t -> chunk_info list
(** Per-chunk partition indexes in capture order, without materializing
    deferred chunks — what {!Tape_io} serializes and [dvf tape info]
    summarizes.  The coverage arrays are fresh copies. *)

val fold_chunks :
  t ->
  init:'a ->
  f:('a -> addrs:int array -> metas:int array -> len:int -> 'a) ->
  'a
(** Fold over the raw columnar chunks in capture order, without decoding
    or copying — indices [0 .. len-1] of [addrs]/[metas] are live.  The
    arrays are the tape's own storage: callers must not mutate them.
    Every tape walk (all the [replay*] variants, {!iter_raw}, {!iter},
    and {!Tape_io.save}) is built on this single fold.  Deferred chunks
    are materialized as the fold reaches them. *)

val materialize : t -> unit
(** Force every deferred chunk's decode now.  Idempotent; useful to
    front-load decode cost (benchmark baselines) or to release the
    mapped file the decoders read from. *)

val iter_raw :
  t -> (addrs:int array -> metas:int array -> len:int -> unit) -> unit
(** Visit the raw columnar chunks in capture order, without decoding —
    indices [0 .. len-1] of [addrs]/[metas] are live.  The arrays are
    the tape's own storage: callers must not mutate them.  This is the
    hook for custom replay kernels (the bench harness' sharded scaling
    measurements). *)

val append_raw_chunk : t -> addrs:int array -> metas:int array -> len:int -> unit
(** Adopt a whole pre-built chunk without per-event validation — the
    {!Tape_io} v1 streaming load path, where the file checksum already
    vouches for the words.  [addrs] and [metas] must both be exactly
    [chunk_events t] long (the tape takes ownership of the arrays; the
    caller must not reuse them) and the tape must currently end on a
    chunk boundary, i.e. only full chunks may have been appended before
    — a full chunk ([len = chunk_events t]) is retired into the filled
    list, a partial one becomes the head.  The partition index is
    recomputed from the words.  Raises [Invalid_argument] on wrong array
    lengths, a length outside [0 .. chunk_events t], or a tape whose
    head is already partially filled. *)

val append_deferred_chunk :
  t ->
  len:int ->
  coverage:int array ->
  min_line:int ->
  max_line:int ->
  decode:(unit -> int array * int array) ->
  unit
(** Adopt a chunk lazily — the {!Tape_io} v2 mmap load path: the
    partition index comes from the file's chunk table and [decode]
    materializes the (exactly [chunk_events t]-long) addr/meta arrays
    from the mapped payload on first use.  [decode] must be pure and
    safe to call from any domain (it may be called more than once under
    a materialization race; one result wins).  A partial chunk
    ([len < chunk_events t]) is decoded eagerly and becomes the head.
    Boundary rules and raises as {!append_raw_chunk}, plus
    [Invalid_argument] on a malformed index ([coverage] not
    {!coverage_words} words of 32 bits, or an invalid line range). *)

val iter : t -> (Event.t -> unit) -> unit
(** Decode and visit every event in capture order. *)

val to_list : t -> Event.t list
(** Decoded events in capture order — tests and small tapes only. *)
