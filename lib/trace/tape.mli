(** Capture-once / replay-many trace tapes.

    The paper's verification methodology collects one memory trace per
    application and feeds it to the cache simulator at many
    configurations (§IV, Fig. 4/6).  A [Tape.t] is that trace: a
    compact, append-only columnar buffer — per event one byte address
    and one {!Cachesim.Cache.pack_access} metadata word, stored in
    chunked unboxed [int] arrays ({!bytes_per_event} = 16 on 64-bit) —
    captured from a {!Recorder} once and then replayed into any number
    of caches without re-executing the workload kernel.

    Chunks are allocated at a fixed capacity (default 65536 events),
    large enough to live on the major heap, so capture is O(1) amortized
    per event and stays off the minor collector.  Replay streams whole
    chunks through {!Cachesim.Cache.access_batch}; {!replay_fused}
    drives several caches from a single chunk walk so a multi-geometry
    sweep reads each chunk once while it is hot.

    Tapes are single-domain values: capture on one domain, then hand the
    (immutable-from-then-on) tape to replay jobs freely — concurrent
    {!replay}s of one tape are safe as long as nobody appends. *)

type t

val create : ?chunk_events:int -> unit -> t
(** [chunk_events] is the per-chunk capacity in events (default 65536).
    Raises [Invalid_argument] when not positive. *)

(** {2 Capture} *)

val append : t -> Event.t -> unit
(** Record one event.  Raises [Invalid_argument] on a negative address
    or on an owner/size outside the packed-word range (see
    {!Cachesim.Cache.pack_access}) — the same events a direct
    {!Cachesim.Cache.access} would reject. *)

val append_batch : t -> Event.t array -> int -> unit
(** [append_batch t events n] records [events.(0 .. n-1)] in order.
    This is the capture fast path: the whole batch is validated up
    front (so a rejected batch leaves the tape untouched) and events
    are then stored in runs split only at chunk boundaries, instead of
    re-checking the boundary and re-validating per event.  Raises
    [Invalid_argument] on a bad count, a negative address, or an
    owner/size outside the packed-word range. *)

val sink : t -> Recorder.sink
(** Per-event capture sink for {!Recorder.add_sink}. *)

val batch_sink : t -> Recorder.batch_sink
(** Chunk capture sink for {!Recorder.add_batch_sink} — the fast path
    when recording from a buffered recorder. *)

(** {2 Replay} *)

val replay : t -> Cachesim.Cache.t -> unit
(** Stream the captured events, in capture order, into [cache] via
    {!Cachesim.Cache.access_batch}.  Statistics afterwards are
    bit-identical to having traced the workload directly into the
    cache. *)

val replay_fused : t -> Cachesim.Cache.t array -> unit
(** One pass over the tape driving every cache: for each chunk, replay
    it into each cache before moving on.  Per-cache results equal
    [Array.iter (replay t) caches]; the fused walk reads each chunk from
    memory once instead of once per cache. *)

val replay_fused_sharded :
  t -> Cachesim.Cache.t array -> shards:int -> shard:int -> unit
(** {!replay_fused} restricted to the cache lines owned by [shard] of
    [shards] (see {!Cachesim.Cache.access_batch_sharded}).  Each cache
    clamps [shards] to its own set count, so heterogeneous geometries
    neither drop nor duplicate lines.  Replaying every shard — in any
    order, or concurrently over per-shard cache replicas whose
    statistics are merged afterwards — is bit-identical to
    {!replay_fused}. *)

val replay_hierarchies : t -> Cachesim.Hierarchy.t array -> unit
(** Fused walk over multi-level hierarchies: for each chunk, feed it to
    each hierarchy's L1 before moving on. *)

val replay_hierarchies_sharded :
  t -> Cachesim.Hierarchy.t array -> shards:int -> shard:int -> unit
(** Sharded fused walk over hierarchies (see
    {!Cachesim.Hierarchy.access_batch_sharded}). *)

(** {2 Inspection} *)

val length : t -> int
(** Events captured so far. *)

val chunk_events : t -> int
(** Per-chunk capacity this tape was created with. *)

val chunk_count : t -> int
(** Non-empty chunks currently held. *)

val bytes_per_event : int
(** Storage cost of one event: two machine words. *)

val allocated_bytes : t -> int
(** Total bytes of chunk storage allocated (counts the partial head
    chunk at full capacity — [allocated_bytes t / max 1 (length t)]
    is the real amortized footprint per event). *)

val fold_chunks :
  t ->
  init:'a ->
  f:('a -> addrs:int array -> metas:int array -> len:int -> 'a) ->
  'a
(** Fold over the raw columnar chunks in capture order, without decoding
    or copying — indices [0 .. len-1] of [addrs]/[metas] are live.  The
    arrays are the tape's own storage: callers must not mutate them.
    Every tape walk (all the [replay*] variants, {!iter_raw}, {!iter},
    and {!Tape_io.save}) is built on this single fold. *)

val iter_raw :
  t -> (addrs:int array -> metas:int array -> len:int -> unit) -> unit
(** Visit the raw columnar chunks in capture order, without decoding —
    indices [0 .. len-1] of [addrs]/[metas] are live.  The arrays are
    the tape's own storage: callers must not mutate them.  This is the
    hook for custom replay kernels (the bench harness' sharded scaling
    measurements). *)

val append_raw_chunk : t -> addrs:int array -> metas:int array -> len:int -> unit
(** Adopt a whole pre-built chunk without per-event validation — the
    {!Tape_io} load path, where the file checksum already vouches for
    the words.  [addrs] and [metas] must both be exactly
    [chunk_events t] long (the tape takes ownership of the arrays; the
    caller must not reuse them) and the tape must currently end on a
    chunk boundary, i.e. only full chunks may have been appended before
    — a full chunk ([len = chunk_events t]) is retired into the filled
    list, a partial one becomes the head.  Raises [Invalid_argument] on
    wrong array lengths, a length outside [0 .. chunk_events t], or a
    tape whose head is already partially filled. *)

val iter : t -> (Event.t -> unit) -> unit
(** Decode and visit every event in capture order. *)

val to_list : t -> Event.t list
(** Decoded events in capture order — tests and small tapes only. *)
