(* Binary on-disk tape format.  All multi-byte fields are little-endian
   and fixed-width.  Version 2 (written by [save]):

     offset  size  field
     0       8     magic "dvftape\n"
     8       4     u32 format version (= 2)
     12      4     u32 chunk capacity in events
     16      8     i64 total event count
     24      8     i64 payload checksum (see below)
     32      ...   provenance: str workload, str size, i64 seed
     ...     ...   region table: u32 page, u32 stagger, u32 count,
                   then per region: u32 id, str name, i64 base,
                   i64 bytes, u32 elem_size
     ...     ...   chunk table: u32 chunk count, then per chunk:
                   u32 len, 8 x u32 coverage bitmap words,
                   i64 min granule line, i64 max granule line;
                   then i64 index checksum over the table entries
     ...     ...   u32 pad length, then that many zero bytes, sized so
                   the payload starts 8-byte-aligned in the file
     ...     ...   payload, chunks in capture order:
                   len x i64 addrs, len x i64 metas (no length prefix —
                   lengths live in the chunk table)

   where [str] is a u32 byte length followed by the raw bytes.  Every
   chunk is full except possibly the last (the tape invariant), and the
   loader enforces exactly that, so the chunk count is implied by the
   event count.  The payload checksum is an FNV-1a-shaped mix over the
   event words in capture order (addr then meta per event), computed
   with native 63-bit integer arithmetic — deterministic on any 64-bit
   platform, which the 16 B/event format already assumes; its
   definition (and therefore the stored value for identical events) is
   unchanged from version 1.  The chunk table gets its own checksum so
   the partition index — which decides which chunks a sharded walk may
   skip — is vouched for at load time, before any chunk is adopted.

   Version 2 loads map the (8-byte-aligned, exactly-sized) payload with
   [Unix.map_file] and adopt chunks through
   [Tape.append_deferred_chunk]: the payload checksum is verified over
   the mapping up front — corrupt or truncated files are rejected
   before a single chunk is adopted — and the per-chunk addr/meta [int]
   arrays are only decoded out of the mapping when a walk first touches
   the chunk, so a load is O(header + checksum scan) and chunks every
   shard skips are never decoded at all.  On a big-endian host, or when
   the file cannot be mapped (exotic filesystems), the payload is
   streamed and decoded eagerly instead — same validation, same tape.

   Version 1 files (no chunk table; payload chunks carry a u32 length
   prefix) still load through the original streaming path, with the
   partition index recomputed by [Tape.append_raw_chunk]. *)

let magic = "dvftape\n"
let format_version = 2
let oldest_readable_version = 1

type meta = { workload : string; size : string; seed : int }

type error =
  | Bad_magic
  | Version_mismatch of int
  | Corrupt of string
  | Io_error of string

let error_to_string = function
  | Bad_magic -> "not a dvf tape file (bad magic)"
  | Version_mismatch v ->
      Printf.sprintf "tape format version %d (this build reads versions %d..%d)"
        v oldest_readable_version format_version
  | Corrupt msg -> "corrupt tape file: " ^ msg
  | Io_error msg -> "tape i/o error: " ^ msg

(* FNV-1a shape over native words; multiplication wraps mod 2^63.  Also
   the hash behind [Tape_store] content addressing. *)
let hash_init = 0x3243f6a8885a308
let hash_prime = 0x100000001b3
let hash_mix h w = (h lxor w) * hash_prime

let hash_string s =
  String.fold_left (fun h c -> hash_mix h (Char.code c)) hash_init s

let checksum tape =
  Tape.fold_chunks tape ~init:hash_init ~f:(fun h ~addrs ~metas ~len ->
      let h = ref h in
      for i = 0 to len - 1 do
        h := hash_mix (hash_mix !h addrs.(i)) metas.(i)
      done;
      !h)

let index_checksum infos =
  List.fold_left
    (fun h (ci : Tape.chunk_info) ->
      let h = hash_mix h ci.ci_len in
      let h = Array.fold_left hash_mix h ci.ci_coverage in
      hash_mix (hash_mix h ci.ci_min_line) ci.ci_max_line)
    hash_init infos

(* Sanity bounds: a header field past these is corruption, not a big
   tape.  (A chunk capacity of 2^30 events would be a 16 GiB chunk.) *)
let max_chunk_events = 1 lsl 30
let max_string_len = 1 lsl 20
let max_regions = 1 lsl 20

(* {2 Writing} *)

let add_u32 b v = Buffer.add_int32_le b (Int32.of_int v)
let add_i64 b v = Buffer.add_int64_le b (Int64.of_int v)

let add_str b s =
  add_u32 b (String.length s);
  Buffer.add_string b s

let add_provenance_and_regions header ~meta ~registry =
  add_str header meta.workload;
  add_str header meta.size;
  add_i64 header meta.seed;
  let page, stagger, entries = Region.export registry in
  add_u32 header page;
  add_u32 header stagger;
  add_u32 header (List.length entries);
  List.iter
    (fun (id, name, base, bytes, elem_size) ->
      add_u32 header id;
      add_str header name;
      add_i64 header base;
      add_i64 header bytes;
      add_u32 header elem_size)
    entries

let write_tape oc ~meta ~registry ~tape =
  let infos = Tape.chunk_infos tape in
  let header = Buffer.create 1024 in
  Buffer.add_string header magic;
  add_u32 header format_version;
  add_u32 header (Tape.chunk_events tape);
  add_i64 header (Tape.length tape);
  add_i64 header (checksum tape);
  add_provenance_and_regions header ~meta ~registry;
  add_u32 header (List.length infos);
  List.iter
    (fun (ci : Tape.chunk_info) ->
      add_u32 header ci.Tape.ci_len;
      Array.iter (fun w -> add_u32 header w) ci.Tape.ci_coverage;
      add_i64 header ci.Tape.ci_min_line;
      add_i64 header ci.Tape.ci_max_line)
    infos;
  add_i64 header (index_checksum infos);
  (* Align the payload: after the u32 pad-length field itself. *)
  let pad = (8 - ((Buffer.length header + 4) land 7)) land 7 in
  add_u32 header pad;
  for _ = 1 to pad do Buffer.add_char header '\000' done;
  assert (Buffer.length header land 7 = 0);
  Buffer.output_buffer oc header;
  let scratch = Bytes.create (8 * Tape.chunk_events tape) in
  Tape.fold_chunks tape ~init:() ~f:(fun () ~addrs ~metas ~len ->
      for i = 0 to len - 1 do
        Bytes.set_int64_le scratch (8 * i) (Int64.of_int addrs.(i))
      done;
      output oc scratch 0 (8 * len);
      for i = 0 to len - 1 do
        Bytes.set_int64_le scratch (8 * i) (Int64.of_int metas.(i))
      done;
      output oc scratch 0 (8 * len))

(* The version-1 writer, retained so compatibility tests (and tooling
   that must interoperate with v1-era readers) can still produce v1
   files: chunks carry a u32 length prefix and there is no chunk
   table. *)
let write_tape_v1 oc ~meta ~registry ~tape =
  let header = Buffer.create 512 in
  Buffer.add_string header magic;
  add_u32 header 1;
  add_u32 header (Tape.chunk_events tape);
  add_i64 header (Tape.length tape);
  add_i64 header (checksum tape);
  add_provenance_and_regions header ~meta ~registry;
  Buffer.output_buffer oc header;
  let scratch = Bytes.create (8 * Tape.chunk_events tape) in
  let lenbuf = Bytes.create 4 in
  Tape.fold_chunks tape ~init:() ~f:(fun () ~addrs ~metas ~len ->
      Bytes.set_int32_le lenbuf 0 (Int32.of_int len);
      output_bytes oc lenbuf;
      for i = 0 to len - 1 do
        Bytes.set_int64_le scratch (8 * i) (Int64.of_int addrs.(i))
      done;
      output oc scratch 0 (8 * len);
      for i = 0 to len - 1 do
        Bytes.set_int64_le scratch (8 * i) (Int64.of_int metas.(i))
      done;
      output oc scratch 0 (8 * len))

let save_with writer ~path ~meta ~registry ~tape =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     writer oc ~meta ~registry ~tape;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let save ~path ~meta ~registry ~tape = save_with write_tape ~path ~meta ~registry ~tape

let save_v1 ~path ~meta ~registry ~tape =
  save_with write_tape_v1 ~path ~meta ~registry ~tape

(* {2 Reading} *)

exception Bad_file of error

let corrupt fmt = Printf.ksprintf (fun m -> raise (Bad_file (Corrupt m))) fmt

let read_exact ic b pos len =
  try really_input ic b pos len
  with End_of_file -> corrupt "truncated file"

type reader = { ic : in_channel; word : Bytes.t }

let make_reader ic = { ic; word = Bytes.create 8 }

let read_u32 r =
  read_exact r.ic r.word 0 4;
  Int32.to_int (Bytes.get_int32_le r.word 0) land 0xFFFFFFFF

let read_i64 r =
  read_exact r.ic r.word 0 8;
  let v = Bytes.get_int64_le r.word 0 in
  if v < Int64.of_int min_int || v > Int64.of_int max_int then
    corrupt "64-bit field out of native int range";
  Int64.to_int v

let read_str r =
  let len = read_u32 r in
  if len > max_string_len then corrupt "string length %d out of range" len;
  let b = Bytes.create len in
  read_exact r.ic b 0 len;
  Bytes.unsafe_to_string b

let read_raw_version r =
  let m = Bytes.create (String.length magic) in
  (try really_input r.ic m 0 (String.length magic)
   with End_of_file -> raise (Bad_file Bad_magic));
  if Bytes.to_string m <> magic then raise (Bad_file Bad_magic);
  read_u32 r

let read_header r =
  let version = read_raw_version r in
  if version < oldest_readable_version || version > format_version then
    raise (Bad_file (Version_mismatch version));
  let chunk_events = read_u32 r in
  if chunk_events <= 0 || chunk_events > max_chunk_events then
    corrupt "chunk capacity %d out of range" chunk_events;
  let total = read_i64 r in
  if total < 0 then corrupt "negative event count";
  let stored_checksum = read_i64 r in
  let workload = read_str r in
  let size = read_str r in
  let seed = read_i64 r in
  (version, chunk_events, total, stored_checksum, { workload; size; seed })

let read_regions r =
  let page = read_u32 r in
  let stagger = read_u32 r in
  let count = read_u32 r in
  if count > max_regions then corrupt "region count %d out of range" count;
  let entries =
    List.init count (fun _ ->
        let id = read_u32 r in
        let name = read_str r in
        let base = read_i64 r in
        let bytes = read_i64 r in
        let elem_size = read_u32 r in
        (id, name, base, bytes, elem_size))
  in
  try Region.restore ~page ~stagger entries
  with Invalid_argument msg -> corrupt "%s" msg

let reject_trailing r =
  match input_char r.ic with
  | _ -> corrupt "trailing garbage after last chunk"
  | exception End_of_file -> ()

(* The v1 streaming path: chunks carry their own length prefix and are
   decoded eagerly; [Tape.append_raw_chunk] recomputes the partition
   index from the words. *)
let read_chunks_v1 r ~chunk_events ~total ~stored_checksum =
  let tape = Tape.create ~chunk_events () in
  let scratch = Bytes.create (8 * chunk_events) in
  let hash = ref hash_init in
  let remaining = ref total in
  while !remaining > 0 do
    let expected = min !remaining chunk_events in
    let len = read_u32 r in
    if len <> expected then
      corrupt "chunk length %d, expected %d" len expected;
    let read_words () =
      let a = Array.make chunk_events 0 in
      read_exact r.ic scratch 0 (8 * len);
      for i = 0 to len - 1 do
        a.(i) <- Int64.to_int (Bytes.get_int64_le scratch (8 * i))
      done;
      a
    in
    let addrs = read_words () in
    let metas = read_words () in
    for i = 0 to len - 1 do
      hash := hash_mix (hash_mix !hash addrs.(i)) metas.(i)
    done;
    Tape.append_raw_chunk tape ~addrs ~metas ~len;
    remaining := !remaining - len
  done;
  if !hash <> stored_checksum then corrupt "checksum mismatch";
  reject_trailing r;
  tape

(* One v2 chunk-table entry. *)
type table_entry = {
  e_len : int;
  e_coverage : int array;
  e_min_line : int;
  e_max_line : int;
}

let read_chunk_table r ~chunk_events ~total =
  let count = read_u32 r in
  let expected_count = (total + chunk_events - 1) / chunk_events in
  if count <> expected_count then
    corrupt "chunk count %d, expected %d" count expected_count;
  let entries =
    List.init count (fun i ->
        let len = read_u32 r in
        let expected =
          if i < count - 1 then chunk_events
          else total - ((count - 1) * chunk_events)
        in
        if len <> expected then
          corrupt "chunk length %d, expected %d" len expected;
        let coverage = Array.init Tape.coverage_words (fun _ -> read_u32 r) in
        let min_line = read_i64 r in
        let max_line = read_i64 r in
        if min_line < 0 || max_line < min_line then
          corrupt "chunk line range [%d, %d] invalid" min_line max_line;
        { e_len = len; e_coverage = coverage; e_min_line = min_line;
          e_max_line = max_line })
  in
  let stored_index_checksum = read_i64 r in
  let computed =
    List.fold_left
      (fun h e ->
        let h = hash_mix h e.e_len in
        let h = Array.fold_left hash_mix h e.e_coverage in
        hash_mix (hash_mix h e.e_min_line) e.e_max_line)
      hash_init entries
  in
  if computed <> stored_index_checksum then corrupt "chunk index checksum mismatch";
  let pad = read_u32 r in
  if pad > 7 then corrupt "padding length %d out of range" pad;
  if pad > 0 then read_exact r.ic r.word 0 pad;
  entries

let adopt_entries tape entries ~word_at =
  List.fold_left
    (fun base e ->
      let len = e.e_len in
      let decode () =
        let chunk_events = Tape.chunk_events tape in
        let addrs = Array.make chunk_events 0 in
        let metas = Array.make chunk_events 0 in
        for i = 0 to len - 1 do
          addrs.(i) <- word_at (base + i);
          metas.(i) <- word_at (base + len + i)
        done;
        (addrs, metas)
      in
      Tape.append_deferred_chunk tape ~len ~coverage:e.e_coverage
        ~min_line:e.e_min_line ~max_line:e.e_max_line ~decode;
      base + (2 * len))
    0 entries
  |> ignore

(* The v2 mmap path: map the payload (8-aligned by construction, sized
   exactly by the header), verify the payload checksum over the mapping
   — before any chunk is adopted — then register every chunk as a
   deferred decode out of the mapping. *)
let read_chunks_v2_mapped r ~telemetry ~chunk_events ~total ~stored_checksum
    entries ~payload_offset =
  let words = 2 * total in
  let ba =
    Bigarray.array1_of_genarray
      (Unix.map_file
         (Unix.descr_of_in_channel r.ic)
         ~pos:(Int64.of_int payload_offset) Bigarray.int64 Bigarray.c_layout
         false [| words |])
  in
  let hash = ref hash_init in
  let base = ref 0 in
  List.iter
    (fun e ->
      for i = 0 to e.e_len - 1 do
        hash :=
          hash_mix
            (hash_mix !hash
               (Int64.to_int (Bigarray.Array1.unsafe_get ba (!base + i))))
            (Int64.to_int (Bigarray.Array1.unsafe_get ba (!base + e.e_len + i)))
      done;
      base := !base + (2 * e.e_len))
    entries;
  if !hash <> stored_checksum then corrupt "checksum mismatch";
  let tape = Tape.create ~chunk_events () in
  adopt_entries tape entries ~word_at:(fun i ->
      Int64.to_int (Bigarray.Array1.get ba i));
  Dvf_util.Telemetry.add telemetry ~n:(8 * words) "tape/mmap_bytes";
  tape

(* Streamed v2 fallback (big-endian host, or a file [Unix.map_file]
   refuses): same layout, eager decode, same checksum-before-trust —
   chunks are only adopted after the full payload verified. *)
let read_chunks_v2_streamed r ~chunk_events ~stored_checksum entries =
  let scratch = Bytes.create (8 * chunk_events) in
  let hash = ref hash_init in
  let chunks =
    List.map
      (fun e ->
        let read_words () =
          let a = Array.make chunk_events 0 in
          read_exact r.ic scratch 0 (8 * e.e_len);
          for i = 0 to e.e_len - 1 do
            a.(i) <- Int64.to_int (Bytes.get_int64_le scratch (8 * i))
          done;
          a
        in
        let addrs = read_words () in
        let metas = read_words () in
        for i = 0 to e.e_len - 1 do
          hash := hash_mix (hash_mix !hash addrs.(i)) metas.(i)
        done;
        (e, addrs, metas))
      entries
  in
  if !hash <> stored_checksum then corrupt "checksum mismatch";
  reject_trailing r;
  let tape = Tape.create ~chunk_events () in
  List.iter
    (fun (e, addrs, metas) ->
      Tape.append_deferred_chunk tape ~len:e.e_len ~coverage:e.e_coverage
        ~min_line:e.e_min_line ~max_line:e.e_max_line
        ~decode:(fun () -> (addrs, metas)))
    chunks;
  Tape.materialize tape;
  tape

let read_chunks_v2 r ~telemetry ~chunk_events ~total ~stored_checksum =
  let entries = read_chunk_table r ~chunk_events ~total in
  if total = 0 then begin
    if hash_init <> stored_checksum then corrupt "checksum mismatch";
    reject_trailing r;
    Tape.create ~chunk_events ()
  end
  else begin
    let payload_offset = pos_in r.ic in
    if payload_offset land 7 <> 0 then
      corrupt "payload not 8-byte-aligned (offset %d)" payload_offset;
    let expected_size = payload_offset + (8 * 2 * total) in
    let actual = in_channel_length r.ic in
    if actual < expected_size then corrupt "truncated file";
    if actual > expected_size then corrupt "trailing garbage after last chunk";
    if Sys.big_endian then
      read_chunks_v2_streamed r ~chunk_events ~stored_checksum entries
    else
      try
        read_chunks_v2_mapped r ~telemetry ~chunk_events ~total
          ~stored_checksum entries ~payload_offset
      with Unix.Unix_error _ ->
        read_chunks_v2_streamed r ~chunk_events ~stored_checksum entries
  end

let with_file path f =
  match open_in_bin path with
  | exception Sys_error msg -> Error (Io_error msg)
  | ic -> (
      let finally () = close_in_noerr ic in
      match Fun.protect ~finally (fun () -> f (make_reader ic)) with
      | v -> Ok v
      | exception Bad_file e -> Error e
      | exception Sys_error msg -> Error (Io_error msg))

let load ?(telemetry = Dvf_util.Telemetry.null) ?(eager = false) path =
  with_file path (fun r ->
      let version, chunk_events, total, stored_checksum, meta = read_header r in
      let registry = read_regions r in
      let tape =
        match version with
        | 1 -> read_chunks_v1 r ~chunk_events ~total ~stored_checksum
        | 2 -> read_chunks_v2 r ~telemetry ~chunk_events ~total ~stored_checksum
        | _ -> assert false (* read_header rejected it *)
      in
      if eager then Tape.materialize tape;
      (meta, registry, tape))

let read_meta path =
  with_file path (fun r ->
      let _, _, _, _, meta = read_header r in
      meta)

let read_version path = with_file path read_raw_version
