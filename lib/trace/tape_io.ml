(* Binary on-disk tape format, version 1.  All multi-byte fields are
   little-endian and fixed-width:

     offset  size  field
     0       8     magic "dvftape\n"
     8       4     u32 format version (= 1)
     12      4     u32 chunk capacity in events
     16      8     i64 total event count
     24      8     i64 payload checksum (see below)
     32      ...   provenance: str workload, str size, i64 seed
     ...     ...   region table: u32 page, u32 stagger, u32 count,
                   then per region: u32 id, str name, i64 base,
                   i64 bytes, u32 elem_size
     ...     ...   chunks, in capture order: u32 len,
                   len x i64 addrs, len x i64 metas

   where [str] is a u32 byte length followed by the raw bytes.  Every
   chunk is full except possibly the last (the tape invariant), and the
   loader enforces exactly that, so the chunk count is implied by the
   event count.  The checksum is an FNV-1a-shaped mix over the event
   words in capture order (addr then meta per event), computed with
   native 63-bit integer arithmetic — deterministic on any 64-bit
   platform, which the 16 B/event format already assumes.  Because the
   checksum vouches for the payload, [load] rebuilds chunks with
   [Tape.append_raw_chunk] and performs no per-event validation. *)

let magic = "dvftape\n"
let format_version = 1

type meta = { workload : string; size : string; seed : int }

type error =
  | Bad_magic
  | Version_mismatch of int
  | Corrupt of string
  | Io_error of string

let error_to_string = function
  | Bad_magic -> "not a dvf tape file (bad magic)"
  | Version_mismatch v ->
      Printf.sprintf "tape format version %d (this build reads version %d)" v
        format_version
  | Corrupt msg -> "corrupt tape file: " ^ msg
  | Io_error msg -> "tape i/o error: " ^ msg

(* FNV-1a shape over native words; multiplication wraps mod 2^63.  Also
   the hash behind [Tape_store] content addressing. *)
let hash_init = 0x3243f6a8885a308
let hash_prime = 0x100000001b3
let hash_mix h w = (h lxor w) * hash_prime

let hash_string s =
  String.fold_left (fun h c -> hash_mix h (Char.code c)) hash_init s

let checksum tape =
  Tape.fold_chunks tape ~init:hash_init ~f:(fun h ~addrs ~metas ~len ->
      let h = ref h in
      for i = 0 to len - 1 do
        h := hash_mix (hash_mix !h addrs.(i)) metas.(i)
      done;
      !h)

(* Sanity bounds: a header field past these is corruption, not a big
   tape.  (A chunk capacity of 2^30 events would be a 16 GiB chunk.) *)
let max_chunk_events = 1 lsl 30
let max_string_len = 1 lsl 20
let max_regions = 1 lsl 20

(* {2 Writing} *)

let add_u32 b v = Buffer.add_int32_le b (Int32.of_int v)
let add_i64 b v = Buffer.add_int64_le b (Int64.of_int v)

let add_str b s =
  add_u32 b (String.length s);
  Buffer.add_string b s

let write_tape oc ~meta ~registry ~tape =
  let header = Buffer.create 512 in
  Buffer.add_string header magic;
  add_u32 header format_version;
  add_u32 header (Tape.chunk_events tape);
  add_i64 header (Tape.length tape);
  add_i64 header (checksum tape);
  add_str header meta.workload;
  add_str header meta.size;
  add_i64 header meta.seed;
  let page, stagger, entries = Region.export registry in
  add_u32 header page;
  add_u32 header stagger;
  add_u32 header (List.length entries);
  List.iter
    (fun (id, name, base, bytes, elem_size) ->
      add_u32 header id;
      add_str header name;
      add_i64 header base;
      add_i64 header bytes;
      add_u32 header elem_size)
    entries;
  Buffer.output_buffer oc header;
  let scratch = Bytes.create (8 * Tape.chunk_events tape) in
  let lenbuf = Bytes.create 4 in
  Tape.fold_chunks tape ~init:() ~f:(fun () ~addrs ~metas ~len ->
      Bytes.set_int32_le lenbuf 0 (Int32.of_int len);
      output_bytes oc lenbuf;
      for i = 0 to len - 1 do
        Bytes.set_int64_le scratch (8 * i) (Int64.of_int addrs.(i))
      done;
      output oc scratch 0 (8 * len);
      for i = 0 to len - 1 do
        Bytes.set_int64_le scratch (8 * i) (Int64.of_int metas.(i))
      done;
      output oc scratch 0 (8 * len))

let save ~path ~meta ~registry ~tape =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     write_tape oc ~meta ~registry ~tape;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

(* {2 Reading} *)

exception Bad_file of error

let corrupt fmt = Printf.ksprintf (fun m -> raise (Bad_file (Corrupt m))) fmt

let read_exact ic b pos len =
  try really_input ic b pos len
  with End_of_file -> corrupt "truncated file"

type reader = { ic : in_channel; word : Bytes.t }

let make_reader ic = { ic; word = Bytes.create 8 }

let read_u32 r =
  read_exact r.ic r.word 0 4;
  Int32.to_int (Bytes.get_int32_le r.word 0) land 0xFFFFFFFF

let read_i64 r =
  read_exact r.ic r.word 0 8;
  let v = Bytes.get_int64_le r.word 0 in
  if v < Int64.of_int min_int || v > Int64.of_int max_int then
    corrupt "64-bit field out of native int range";
  Int64.to_int v

let read_str r =
  let len = read_u32 r in
  if len > max_string_len then corrupt "string length %d out of range" len;
  let b = Bytes.create len in
  read_exact r.ic b 0 len;
  Bytes.unsafe_to_string b

let read_magic_version r =
  let m = Bytes.create (String.length magic) in
  (try really_input r.ic m 0 (String.length magic)
   with End_of_file -> raise (Bad_file Bad_magic));
  if Bytes.to_string m <> magic then raise (Bad_file Bad_magic);
  let v = read_u32 r in
  if v <> format_version then raise (Bad_file (Version_mismatch v))

let read_header r =
  read_magic_version r;
  let chunk_events = read_u32 r in
  if chunk_events <= 0 || chunk_events > max_chunk_events then
    corrupt "chunk capacity %d out of range" chunk_events;
  let total = read_i64 r in
  if total < 0 then corrupt "negative event count";
  let stored_checksum = read_i64 r in
  let workload = read_str r in
  let size = read_str r in
  let seed = read_i64 r in
  (chunk_events, total, stored_checksum, { workload; size; seed })

let read_regions r =
  let page = read_u32 r in
  let stagger = read_u32 r in
  let count = read_u32 r in
  if count > max_regions then corrupt "region count %d out of range" count;
  let entries =
    List.init count (fun _ ->
        let id = read_u32 r in
        let name = read_str r in
        let base = read_i64 r in
        let bytes = read_i64 r in
        let elem_size = read_u32 r in
        (id, name, base, bytes, elem_size))
  in
  try Region.restore ~page ~stagger entries
  with Invalid_argument msg -> corrupt "%s" msg

let read_chunks r ~chunk_events ~total ~stored_checksum =
  let tape = Tape.create ~chunk_events () in
  let scratch = Bytes.create (8 * chunk_events) in
  let hash = ref hash_init in
  let remaining = ref total in
  while !remaining > 0 do
    let expected = min !remaining chunk_events in
    let len = read_u32 r in
    if len <> expected then
      corrupt "chunk length %d, expected %d" len expected;
    let read_words () =
      let a = Array.make chunk_events 0 in
      read_exact r.ic scratch 0 (8 * len);
      for i = 0 to len - 1 do
        a.(i) <- Int64.to_int (Bytes.get_int64_le scratch (8 * i))
      done;
      a
    in
    let addrs = read_words () in
    let metas = read_words () in
    for i = 0 to len - 1 do
      hash := hash_mix (hash_mix !hash addrs.(i)) metas.(i)
    done;
    Tape.append_raw_chunk tape ~addrs ~metas ~len;
    remaining := !remaining - len
  done;
  if !hash <> stored_checksum then corrupt "checksum mismatch";
  (match input_char r.ic with
  | _ -> corrupt "trailing garbage after last chunk"
  | exception End_of_file -> ());
  tape

let with_file path f =
  match open_in_bin path with
  | exception Sys_error msg -> Error (Io_error msg)
  | ic -> (
      let finally () = close_in_noerr ic in
      match Fun.protect ~finally (fun () -> f (make_reader ic)) with
      | v -> Ok v
      | exception Bad_file e -> Error e
      | exception Sys_error msg -> Error (Io_error msg))

let load path =
  with_file path (fun r ->
      let chunk_events, total, stored_checksum, meta = read_header r in
      let registry = read_regions r in
      let tape = read_chunks r ~chunk_events ~total ~stored_checksum in
      (meta, registry, tape))

let read_meta path =
  with_file path (fun r ->
      let _, _, _, meta = read_header r in
      meta)
