(** Simulated address space and data-structure (region) registry.

    The kernels do not run at native addresses, so the registry lays out
    each named data structure in a flat simulated address space.  Regions
    are page-aligned and separated so that two structures never share a
    cache line — the same property the authors obtain from Pin by mapping
    virtual addresses back to `malloc`d structures. *)

type t
(** A registry (one per kernel run). *)

type region = private {
  id : int;           (** owner id used in events and cache stats *)
  name : string;
  base : int;         (** byte base address, line aligned *)
  bytes : int;        (** extent in bytes *)
  elem_size : int;    (** logical element size in bytes *)
}

val create : ?page:int -> ?stagger:int -> unit -> t
(** [page] is the padding granule between regions (default 4096).
    [stagger] (default 832 bytes, a line-aligned odd multiple of 64)
    offsets each successive region's base by
    an extra [id * stagger] bytes so that distinct structures do not map
    to the same cache sets — mirroring real allocators, where large arrays
    land at varied offsets.  Page-aligning every structure identically
    would manufacture pathological set conflicts (e.g. a stencil grid, its
    solution array and its right-hand side all colliding in one set) that
    neither real systems nor the paper's fully-associative models
    exhibit.  Pass [~stagger:0] to study exactly that pathology. *)

val register : t -> name:string -> elements:int -> elem_size:int -> region
(** Allocate a fresh region of [elements * elem_size] bytes.  Names must be
    unique within a registry; raises [Invalid_argument] otherwise. *)

val lookup : t -> string -> region
(** Raises [Not_found]. *)

val find_id : t -> int -> region option
val regions : t -> region list
(** In registration order. *)

val elem_addr : region -> int -> int
(** [elem_addr r i] is the byte address of element [i]; bounds-checked. *)

val owner_name : t -> int -> string
(** Name for an owner id, or ["<anon:ID>"] if unknown. *)

(** {2 Persistence}

    Hooks for {!Tape_io}: a registry is fully determined by its layout
    parameters plus the ordered region list. *)

val export : t -> int * int * (int * string * int * int * int) list
(** [export t] is [(page, stagger, entries)] with one
    [(id, name, base, bytes, elem_size)] entry per region in
    registration order. *)

val restore :
  page:int -> stagger:int -> (int * string * int * int * int) list -> t
(** Rebuild a registry from {!export}ed data.  The result is
    indistinguishable from the original — ids, bases and the internal
    allocation cursor all match, so further {!register} calls land
    exactly where they would have.  Raises [Invalid_argument] when an
    entry is inconsistent with the deterministic layout (wrong id
    sequence, base not matching the page/stagger rule, duplicate name),
    so a corrupt or hand-edited tape file cannot smuggle in an
    impossible layout. *)
