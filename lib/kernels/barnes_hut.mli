(** Barnes–Hut N-body simulation (paper Table II / Algorithm 2).

    2-D particles in the unit square, organized in a quadtree; the force
    on each particle is computed by traversing the tree and cutting off
    recursion when a node is "distant enough" (opening angle criterion
    [size / distance < theta]).  The number of tree nodes touched per
    particle — the paper's parameter [k] — depends on the particle
    distribution and [theta] and is reported in the result, to be fed back
    into the random-access model exactly as the paper obtains [k] "by
    profiling application on any available hardware".

    Traced structures: "T" (tree nodes, 32-byte elements, random access)
    and "P" (particles, 32-byte elements, streamed once per force pass
    with a write of the accumulated force). *)

type params = {
  particles : int;
  theta : float;       (** opening angle, typically 0.3–1.0 *)
  seed : int;
  force_passes : int;  (** how many force-computation sweeps to run *)
}

val make_params : ?theta:float -> ?seed:int -> ?force_passes:int -> int -> params

val verification : params
(** Table V: 1000 particles. *)

val profiling : params
(** Table VI: 6000 particles, with [theta = 1.0] so the mean visit count
    lands near the paper's reported ~80 comparisons per body. *)

type result = {
  nodes : int;              (** quadtree nodes built *)
  avg_visits : float;       (** k: mean tree nodes touched per particle *)
  hot_nodes : int;
      (** nodes visited by at least half of all traversals — the root and
          upper tree levels, which every force computation re-touches and
          which therefore stay cached *)
  hot_visits : float;       (** mean visits per traversal landing on hot nodes *)
  forces : (float * float) array;  (** net force per particle *)
  flops : int;
}

val run : Memtrace.Region.t -> Memtrace.Recorder.t -> params -> result

val run_untraced : params -> result

val direct_forces : params -> (float * float) array
(** Exact O(n^2) pairwise forces, for accuracy testing. *)

val injection_steps : params -> int
(** Number of traversal boundaries a fault can land on
    ([particles * force_passes]); {!run_injected}'s [flip_at] ranges over
    [0 .. injection_steps] inclusive (the last value strikes after the
    final traversal, i.e. the written-back output). *)

val run_injected :
  params ->
  structure:[ `T | `P ] ->
  flip_at:int ->
  pick:(int -> int) ->
  flip:(float -> float) ->
  (float * float) array
(** Untraced force computation with one fault injected before traversal
    number [flip_at]: [pick len] chooses which of the structure's [len]
    injectable floats to corrupt and [flip] corrupts it.  [`T] exposes the
    live tree nodes' mass / center-of-mass / geometry fields, [`P] the
    particle positions, masses and force accumulators.  With [flip = Fun.id]
    the returned forces are bit-identical to [run_untraced]'s — the
    injector's clean reference. *)

val spec : ?result:result -> params -> Access_patterns.App_spec.t
(** Random-access model for T parameterized by the measured [nodes] and
    [avg_visits] (from [result], or from an untraced run when absent),
    plus a streaming model for P.  The measured hot set — upper-tree
    nodes every traversal revisits, which LRU keeps resident — is
    excluded from the random population ([N - hot_nodes] elements,
    [k - hot_visits] visits) and its cache occupancy shrinks the random
    part's cache share; the paper's uniform-visit assumption otherwise
    overstates NB misses by ~50 %. *)
