module Tracked = Memtrace.Tracked
module Ap = Access_patterns

type params = {
  n : int;
  repeats : int;
  seed : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let make_params ?(repeats = 1) ?(seed = 3) n =
  if not (is_power_of_two n) || n < 2 then
    invalid_arg "Fft.make_params: n must be a power of two >= 2";
  if repeats < 1 then invalid_arg "Fft.make_params: repeats < 1";
  { n; repeats; seed }

let verification = make_params 16_384
let profiling = make_params 2_048

type result = {
  checksum : float;
  max_roundtrip_error : float;
  flops : int;
}

module type Ops = sig
  val get : int -> Complex.t
  val set : int -> Complex.t -> unit
end

let bit_reverse ~bits i =
  let r = ref 0 in
  for b = 0 to bits - 1 do
    if i land (1 lsl b) <> 0 then r := !r lor (1 lsl (bits - 1 - b))
  done;
  !r

let log2i n =
  let rec loop acc n = if n <= 1 then acc else loop (acc + 1) (n lsr 1) in
  loop 0 n

(* In-place iterative radix-2 transform; [sign] = -1 forward, +1 inverse
   (without the 1/n scaling).  All element accesses go through [O], so the
   traced kernel and the template generator share the exact pass
   structure.  [on_pass] fires before the bit-reversal pass and before
   each butterfly pass — the fault injector's hook. *)
let transform ?(on_pass = fun () -> ()) (module O : Ops) ~n ~sign ~flops =
  let bits = log2i n in
  on_pass ();
  for i = 0 to n - 1 do
    let j = bit_reverse ~bits i in
    if i < j then begin
      let xi = O.get i and xj = O.get j in
      O.set i xj;
      O.set j xi
    end
  done;
  let len = ref 2 in
  while !len <= n do
    on_pass ();
    let half = !len / 2 in
    let ang = sign *. 2.0 *. Dvf_util.Maths.pi /. float_of_int !len in
    let wlen = { Complex.re = cos ang; im = sin ang } in
    let base = ref 0 in
    while !base < n do
      let w = ref Complex.one in
      for o = 0 to half - 1 do
        let i = !base + o in
        let j = i + half in
        let u = O.get i in
        let v = Complex.mul (O.get j) !w in
        O.set i (Complex.add u v);
        O.set j (Complex.sub u v);
        w := Complex.mul !w wlen;
        flops 10
      done;
      base := !base + !len
    done;
    len := !len * 2
  done

let gen_signal p =
  let rng = Dvf_util.Rng.create p.seed in
  Array.init p.n (fun _ ->
      {
        Complex.re = Dvf_util.Rng.float rng 2.0 -. 1.0;
        im = Dvf_util.Rng.float rng 2.0 -. 1.0;
      })

let array_ops (a : Complex.t array) =
  (module struct
    let get i = a.(i)
    let set i v = a.(i) <- v
  end : Ops)

let roundtrip_error p signal =
  let work = Array.copy signal in
  let no_flops _ = () in
  transform (array_ops work) ~n:p.n ~sign:(-1.0) ~flops:no_flops;
  transform (array_ops work) ~n:p.n ~sign:1.0 ~flops:no_flops;
  let err = ref 0.0 in
  let scale = float_of_int p.n in
  Array.iteri
    (fun i x ->
      let d = Complex.sub (Complex.div x { Complex.re = scale; im = 0.0 }) signal.(i) in
      err := Float.max !err (Complex.norm d))
    work;
  !err

let finish p ~flops data signal =
  let checksum = Array.fold_left (fun acc x -> acc +. Complex.norm x) 0.0 data in
  { checksum; max_roundtrip_error = roundtrip_error p signal; flops }

let run registry recorder p =
  let signal = gen_signal p in
  let x =
    Tracked.create registry recorder ~name:"X" ~elem_size:16 (Array.copy signal)
  in
  let flop_total = ref 0 in
  let flops n = flop_total := !flop_total + n in
  let ops =
    (module struct
      let get = Tracked.get x
      let set = Tracked.set x
    end : Ops)
  in
  for _ = 1 to p.repeats do
    transform ops ~n:p.n ~sign:(-1.0) ~flops
  done;
  finish p ~flops:!flop_total (Tracked.to_array x) signal

let run_untraced p =
  let signal = gen_signal p in
  let work = Array.copy signal in
  let flop_total = ref 0 in
  let flops n = flop_total := !flop_total + n in
  for _ = 1 to p.repeats do
    transform (array_ops work) ~n:p.n ~sign:(-1.0) ~flops
  done;
  finish p ~flops:!flop_total work signal

let injection_passes p = p.repeats * (1 + log2i p.n)

(* Fault-injection entry: the forward transforms of [run_untraced] with
   one flip in the signal array before pass number [flip_at] (or after the
   last pass when [flip_at = injection_passes]).  The injectable floats
   are re(X) | im(X) (2n of them).  Returns the transformed array;
   [flip = Fun.id] reproduces [run_untraced]'s output bit-for-bit. *)
let run_injected p ~flip_at ~pick ~flip =
  let work = Array.copy (gen_signal p) in
  let inject () =
    let idx = pick (2 * p.n) in
    let e = idx mod p.n in
    let x = work.(e) in
    work.(e) <-
      (if idx < p.n then { x with Complex.re = flip x.Complex.re }
       else { x with Complex.im = flip x.Complex.im })
  in
  let step = ref 0 in
  let on_pass () =
    if !step = flip_at then inject ();
    incr step
  in
  let no_flops _ = () in
  for _ = 1 to p.repeats do
    transform ~on_pass (array_ops work) ~n:p.n ~sign:(-1.0) ~flops:no_flops
  done;
  if flip_at >= !step then inject ();
  work

let fft_in_place a =
  let n = Array.length a in
  if not (is_power_of_two n) then
    invalid_arg "Fft.fft_in_place: length must be a power of two";
  transform (array_ops a) ~n ~sign:(-1.0) ~flops:(fun _ -> ())

let naive_dft re im =
  let n = Array.length re in
  let out_re = Array.make n 0.0 and out_im = Array.make n 0.0 in
  for k = 0 to n - 1 do
    for t = 0 to n - 1 do
      let ang = -2.0 *. Dvf_util.Maths.pi *. float_of_int (k * t) /. float_of_int n in
      let c = cos ang and s = sin ang in
      out_re.(k) <- out_re.(k) +. (re.(t) *. c) -. (im.(t) *. s);
      out_im.(k) <- out_im.(k) +. (re.(t) *. s) +. (im.(t) *. c)
    done
  done;
  (out_re, out_im)

(* Template input: the same pass structure with phantom values. *)
let reference_stream p =
  (* Stores are encoded as (lnot idx) and decoded into (refs, writes). *)
  let refs = ref [] and count = ref 0 in
  let ops =
    (module struct
      let get i = refs := i :: !refs; incr count; Complex.zero
      let set i _ = refs := lnot i :: !refs; incr count
    end : Ops)
  in
  let no_flops _ = () in
  for _ = 1 to p.repeats do
    transform ops ~n:p.n ~sign:(-1.0) ~flops:no_flops
  done;
  let arr = Array.make !count 0 and writes = Array.make !count false in
  let rec fill i = function
    | [] -> ()
    | x :: rest ->
        if x < 0 then begin
          arr.(i) <- lnot x;
          writes.(i) <- true
        end
        else arr.(i) <- x;
        fill (i - 1) rest
  in
  fill (!count - 1) !refs;
  (arr, writes)

let spec p =
  let refs, writes = reference_stream p in
  Ap.App_spec.make ~app_name:"FT"
    ~structures:
      [
        {
          Ap.App_spec.name = "X";
          bytes = 16 * p.n;
          pattern =
            Some
              (Ap.Pattern.Templated
                 (Ap.Template.make ~writes ~elem_size:16 refs));
        };
      ]
    ()

(* Make the executed template available to Aspen models:
   pattern template(elem = 16, provider = "ft/X"). *)
let () =
  Ap.Template_provider.register "ft/X" (fun env ->
      let get name = List.assoc_opt name env in
      let n =
        match get "n" with
        | Some n -> n
        | None -> failwith "provider \"ft/X\": model needs integer param 'n'"
      in
      let p =
        try make_params ?repeats:(get "repeats") ?seed:(get "seed") n
        with Invalid_argument m -> failwith m
      in
      let refs, writes = reference_stream p in
      (refs, Some writes))
