module Tracked = Memtrace.Tracked
module Ap = Access_patterns

type params = {
  particles : int;
  theta : float;
  seed : int;
  force_passes : int;
}

let make_params ?(theta = 0.5) ?(seed = 7) ?(force_passes = 1) particles =
  if particles < 2 then invalid_arg "Barnes_hut.make_params: need >= 2 particles";
  if theta <= 0.0 then invalid_arg "Barnes_hut.make_params: theta <= 0";
  if force_passes < 1 then invalid_arg "Barnes_hut.make_params: passes < 1";
  { particles; theta; seed; force_passes }

let verification = make_params 1_000
let profiling = make_params ~theta:1.0 6_000

type result = {
  nodes : int;
  avg_visits : float;
  hot_nodes : int;
  hot_visits : float;
  forces : (float * float) array;
  flops : int;
}

(* Quadtree in flat arrays.  A node is either internal (children.(4i+q)
   >= 0 for occupied quadrants) or a leaf holding one particle
   (particle.(i) >= 0).  Center of mass and total mass are accumulated
   during insertion. *)
type tree = {
  mutable count : int;
  cx : float array;           (* cell center *)
  cy : float array;
  half : float array;         (* cell half-width *)
  mass : float array;
  comx : float array;         (* center of mass (weighted sums until built) *)
  comy : float array;
  children : int array;       (* 4 per node, -1 = empty *)
  particle : int array;       (* -1 = internal or empty *)
}

let create_tree capacity =
  {
    count = 0;
    cx = Array.make capacity 0.0;
    cy = Array.make capacity 0.0;
    half = Array.make capacity 0.0;
    mass = Array.make capacity 0.0;
    comx = Array.make capacity 0.0;
    comy = Array.make capacity 0.0;
    children = Array.make (4 * capacity) (-1);
    particle = Array.make capacity (-1);
  }

let new_node tree ~cx ~cy ~half =
  let i = tree.count in
  if i >= Array.length tree.cx then failwith "Barnes_hut: tree capacity exceeded";
  tree.count <- i + 1;
  tree.cx.(i) <- cx;
  tree.cy.(i) <- cy;
  tree.half.(i) <- half;
  tree.particle.(i) <- -1;
  i

let quadrant tree node x y =
  let q = (if x >= tree.cx.(node) then 1 else 0) lor (if y >= tree.cy.(node) then 2 else 0) in
  q

let child_center tree node q =
  let h = tree.half.(node) /. 2.0 in
  let cx = tree.cx.(node) +. (if q land 1 = 1 then h else -.h) in
  let cy = tree.cy.(node) +. (if q land 2 = 2 then h else -.h) in
  (cx, cy, h)

let rec insert tree node px py pm pidx ~depth =
  tree.mass.(node) <- tree.mass.(node) +. pm;
  tree.comx.(node) <- tree.comx.(node) +. (pm *. px);
  tree.comy.(node) <- tree.comy.(node) +. (pm *. py);
  if tree.particle.(node) < 0 && tree.children.(4 * node) = -1
     && tree.children.((4 * node) + 1) = -1
     && tree.children.((4 * node) + 2) = -1
     && tree.children.((4 * node) + 3) = -1
     && tree.mass.(node) = pm
  then
    (* Empty leaf: claim it. *)
    tree.particle.(node) <- pidx
  else begin
    (* Occupied: push the resident particle (if any) down, then insert
       the new one.  Depth cap merges coincident particles into one leaf. *)
    if depth > 48 then ()
    else begin
      (match tree.particle.(node) with
      | -1 -> ()
      | resident ->
          tree.particle.(node) <- -1;
          let rx = tree.comx.(node) -. (px *. pm) and ry = tree.comy.(node) -. (py *. pm) in
          let rm = tree.mass.(node) -. pm in
          (* The resident's position must be recovered: it is the only
             other contribution, so its weighted position is the node sum
             minus the new particle's contribution. *)
          let rpx = rx /. rm and rpy = ry /. rm in
          let q = quadrant tree node rpx rpy in
          let slot = (4 * node) + q in
          (if tree.children.(slot) = -1 then begin
             let cx, cy, h = child_center tree node q in
             tree.children.(slot) <- new_node tree ~cx ~cy ~half:h
           end);
          (* Re-zero then re-add: child starts empty for the resident. *)
          insert tree tree.children.(slot) rpx rpy rm resident ~depth:(depth + 1));
      let q = quadrant tree node px py in
      let slot = (4 * node) + q in
      (if tree.children.(slot) = -1 then begin
         let cx, cy, h = child_center tree node q in
         tree.children.(slot) <- new_node tree ~cx ~cy ~half:h
       end);
      insert tree tree.children.(slot) px py pm pidx ~depth:(depth + 1)
    end
  end

let build_tree params px py pm =
  let n = params.particles in
  let tree = create_tree (8 * n + 16) in
  let root = new_node tree ~cx:0.5 ~cy:0.5 ~half:0.5 in
  for i = 0 to n - 1 do
    insert tree root px.(i) py.(i) pm.(i) i ~depth:0
  done;
  tree

(* Softened gravitational kernel; G = 1. *)
let accumulate_force ~x ~y ~mx ~my ~m (fx, fy) =
  let dx = mx -. x and dy = my -. y in
  let d2 = (dx *. dx) +. (dy *. dy) +. 1e-8 in
  let inv = m /. (d2 *. sqrt d2) in
  (fx +. (dx *. inv), fy +. (dy *. inv))

let gen_particles params =
  let rng = Dvf_util.Rng.create params.seed in
  let n = params.particles in
  let px = Array.init n (fun _ -> Dvf_util.Rng.float rng 1.0) in
  let py = Array.init n (fun _ -> Dvf_util.Rng.float rng 1.0) in
  let pm = Array.init n (fun _ -> 0.5 +. Dvf_util.Rng.float rng 1.0) in
  (px, py, pm)

(* Force on particle [i] by traversing the tree; [touch] is called with
   each tree node index visited. *)
let rec force_from tree params ~touch ~skip node x y acc =
  touch node;
  match tree.particle.(node) with
  | p when p >= 0 ->
      if p = skip then acc
      else
        accumulate_force ~x ~y
          ~mx:(tree.comx.(node) /. tree.mass.(node))
          ~my:(tree.comy.(node) /. tree.mass.(node))
          ~m:tree.mass.(node) acc
  | _ ->
      let mx = tree.comx.(node) /. tree.mass.(node)
      and my = tree.comy.(node) /. tree.mass.(node) in
      let dx = mx -. x and dy = my -. y in
      let dist = sqrt ((dx *. dx) +. (dy *. dy)) +. 1e-12 in
      if 2.0 *. tree.half.(node) /. dist < params.theta then
        accumulate_force ~x ~y ~mx ~my ~m:tree.mass.(node) acc
      else begin
        let acc = ref acc in
        for q = 0 to 3 do
          let c = tree.children.((4 * node) + q) in
          if c >= 0 then acc := force_from tree params ~touch ~skip c x y !acc
        done;
        !acc
      end

let run_with params ~touch_tree ~read_particle ~write_particle =
  let px, py, pm = gen_particles params in
  let tree = build_tree params px py pm in
  let n = params.particles in
  let forces = Array.make n (0.0, 0.0) in
  let visits = ref 0 in
  let flops = ref 0 in
  let node_visits = Array.make tree.count 0 in
  for _pass = 1 to params.force_passes do
    for i = 0 to n - 1 do
      read_particle i;
      let count = ref 0 in
      let touch node =
        incr count;
        node_visits.(node) <- node_visits.(node) + 1;
        touch_tree node
      in
      forces.(i) <-
        force_from tree params ~touch ~skip:i 0 px.(i) py.(i) (0.0, 0.0);
      visits := !visits + !count;
      flops := !flops + (12 * !count);
      write_particle i (* store the accumulated force *)
    done
  done;
  let total_lookups = params.force_passes * n in
  (* Hot set: nodes at least half of the traversals revisit. *)
  let hot_nodes = ref 0 and hot_visit_total = ref 0 in
  Array.iter
    (fun v ->
      if 2 * v >= total_lookups then begin
        incr hot_nodes;
        hot_visit_total := !hot_visit_total + v
      end)
    node_visits;
  {
    nodes = tree.count;
    avg_visits = float_of_int !visits /. float_of_int total_lookups;
    hot_nodes = !hot_nodes;
    hot_visits = float_of_int !hot_visit_total /. float_of_int total_lookups;
    forces;
    flops = !flops;
  }

let run registry recorder params =
  (* Allocate the tree region after building once untraced to know the
     node count?  No: node count is deterministic from the particles, so
     build silently inside run_with; we size the region generously and
     register only the used prefix by a two-phase approach. *)
  let px, py, pm = gen_particles params in
  let tree = build_tree params px py pm in
  let t_region =
    Tracked.make registry recorder ~name:"T" ~elem_size:32 tree.count ()
  in
  let p_region =
    Tracked.make registry recorder ~name:"P" ~elem_size:32 params.particles ()
  in
  (* Construction pass: the random-access model assumes every element is
     traversed once before random accesses begin. *)
  for i = 0 to tree.count - 1 do
    Tracked.touch t_region i
  done;
  run_with params
    ~touch_tree:(fun node -> Tracked.touch t_region node)
    ~read_particle:(fun i -> Tracked.touch p_region i)
    ~write_particle:(fun i -> Tracked.touch_write p_region i)

let run_untraced params =
  run_with params
    ~touch_tree:(fun _ -> ())
    ~read_particle:(fun _ -> ())
    ~write_particle:(fun _ -> ())

(* Fault-injection entry.  Same particle set, tree and traversal order as
   [run_untraced]; the only difference is the [flip_at] boundary check, so
   an identity [flip] reproduces [run_untraced]'s forces bit-for-bit (the
   injector's clean reference).  Injectable floats are the concatenated
   per-field arrays: T = mass | comx | comy | cx | cy | half (6 fields per
   node), P = px | py | pm | fx | fy (5 fields per particle). *)
let injection_steps params = params.particles * params.force_passes

let run_injected params ~structure ~flip_at ~pick ~flip =
  let px, py, pm = gen_particles params in
  let tree = build_tree params px py pm in
  let n = params.particles in
  let fx = Array.make n 0.0 and fy = Array.make n 0.0 in
  let inject () =
    let fields, span =
      match structure with
      | `T ->
          (* Only the first [tree.count] slots of the capacity-sized
             arrays hold live nodes. *)
          ( [| tree.mass; tree.comx; tree.comy; tree.cx; tree.cy; tree.half |],
            tree.count )
      | `P -> ([| px; py; pm; fx; fy |], n)
    in
    let idx = pick (Array.length fields * span) in
    let field = fields.(idx / span) in
    let e = idx mod span in
    field.(e) <- flip field.(e)
  in
  let touch _ = () in
  let step = ref 0 in
  for _pass = 1 to params.force_passes do
    for i = 0 to n - 1 do
      if !step = flip_at then inject ();
      incr step;
      let x, y =
        force_from tree params ~touch ~skip:i 0 px.(i) py.(i) (0.0, 0.0)
      in
      fx.(i) <- x;
      fy.(i) <- y
    done
  done;
  if flip_at >= !step then inject ();
  Array.init n (fun i -> (fx.(i), fy.(i)))

let direct_forces params =
  let px, py, pm = gen_particles params in
  let n = params.particles in
  Array.init n (fun i ->
      let acc = ref (0.0, 0.0) in
      for j = 0 to n - 1 do
        if j <> i then
          acc := accumulate_force ~x:px.(i) ~y:py.(i) ~mx:px.(j) ~my:py.(j)
              ~m:pm.(j) !acc
      done;
      !acc)

let spec ?result params =
  let r = match result with Some r -> r | None -> run_untraced params in
  let nodes = r.nodes in
  let iterations = params.particles * params.force_passes in
  (* Exclude the always-revisited hot set from the random population and
     discount its permanent cache occupancy. *)
  let cold_nodes = max 1 (nodes - r.hot_nodes) in
  let cold_k =
    max 0 (int_of_float (Float.round (r.avg_visits -. r.hot_visits)))
  in
  let hot_bytes = 32 * r.hot_nodes in
  let structures =
    [
      {
        Ap.App_spec.name = "T";
        bytes = 32 * nodes;
        pattern =
          Some
            (Ap.Pattern.Random
               (Ap.Random_access.make ~resident_bytes:hot_bytes
                  ~elements:cold_nodes ~elem_size:32
                  ~visits:(min cold_k cold_nodes) ~iterations ~cache_ratio:1.0
                  ()));
      };
      {
        Ap.App_spec.name = "P";
        bytes = 32 * params.particles;
        pattern =
          Some
            (Ap.Pattern.Stream
               (Ap.Streaming.make ~writeback:true ~elem_size:32
                  ~elements:(params.particles * params.force_passes) ~stride:1 ()));
      };
    ]
  in
  Ap.App_spec.make ~app_name:"NB" ~structures ()
