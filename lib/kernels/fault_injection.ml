module Ap = Access_patterns

type outcome = Benign | Sdc | Detected

type campaign = {
  structure : string;
  trials : int;
  benign : int;
  sdc : int;
  detected : int;
}

type injector = {
  label : string;
  spec : Ap.App_spec.t;
  flops : int;
  structures : string list;
  default_trials : int;
  trial : structure:string -> Dvf_util.Rng.t -> outcome * float;
}

(* Where in the run the flip landed, as a fraction of the kernel's
   injection-slot range — the time axis `dvf windows` bins SDC rates
   over.  The stamp is derived from the already-drawn flip slot, so
   adding it changes no RNG draw and no outcome. *)
let frac_of ~at ~max_at =
  if max_at <= 0 then 0.0 else float_of_int at /. float_of_int max_at

let sdc_rate c =
  if c.trials = 0 then 0.0 else float_of_int c.sdc /. float_of_int c.trials

let unsafe_rate c =
  if c.trials = 0 then 0.0
  else float_of_int (c.sdc + c.detected) /. float_of_int c.trials

let flip_bit v ~bit =
  if bit < 0 || bit > 63 then invalid_arg "Fault_injection.flip_bit: bit outside 0..63";
  Int64.float_of_bits (Int64.logxor (Int64.bits_of_float v) (Int64.shift_left 1L bit))

let tally structure outcomes =
  List.fold_left
    (fun c o ->
      match o with
      | Benign -> { c with benign = c.benign + 1 }
      | Sdc -> { c with sdc = c.sdc + 1 }
      | Detected -> { c with detected = c.detected + 1 })
    { structure; trials = List.length outcomes; benign = 0; sdc = 0; detected = 0 }
    outcomes

(* --- VM --- *)

(* The same arithmetic as Vm.run, open-coded so a flip can be injected
   before a chosen loop iteration. *)
let vm_trial (p : Vm.params) ~rng ~structure =
  let n = p.Vm.n in
  let a = Array.init (n * p.Vm.stride_a) (fun i -> float_of_int ((i mod 97) + 1)) in
  let b =
    Array.init (n * p.Vm.stride_b) (fun i -> float_of_int ((i mod 89) + 1) /. 8.0)
  in
  let c = Array.make n 0.0 in
  let flip_at = Dvf_util.Rng.int rng (n + 1) in
  let bit = Dvf_util.Rng.int rng 64 in
  let inject () =
    let target =
      match structure with "A" -> a | "B" -> b | "C" -> c | _ -> assert false
    in
    let e = Dvf_util.Rng.int rng (Array.length target) in
    target.(e) <- flip_bit target.(e) ~bit
  in
  for i = 0 to n - 1 do
    if i = flip_at then inject ();
    c.(i) <- c.(i) +. (a.(i * p.Vm.stride_a) *. b.(i * p.Vm.stride_b))
  done;
  if flip_at = n then inject ();
  let checksum = Dvf_util.Maths.sum c in
  (checksum, frac_of ~at:flip_at ~max_at:n)

let vm_clean_checksum p =
  (* A no-op "injection": flipping bit 0 of an element twice would be
     cleaner, but simplest is a campaign-free reference run. *)
  let n = p.Vm.n in
  let a = Array.init (n * p.Vm.stride_a) (fun i -> float_of_int ((i mod 97) + 1)) in
  let b =
    Array.init (n * p.Vm.stride_b) (fun i -> float_of_int ((i mod 89) + 1) /. 8.0)
  in
  let c = Array.make n 0.0 in
  for i = 0 to n - 1 do
    c.(i) <- c.(i) +. (a.(i * p.Vm.stride_a) *. b.(i * p.Vm.stride_b))
  done;
  Dvf_util.Maths.sum c

let classify_value ~clean ~tol corrupted =
  if Float.is_nan corrupted || Float.abs corrupted = Float.infinity then Detected
  else if Dvf_util.Maths.rel_error ~expected:clean ~actual:corrupted > tol then Sdc
  else Benign

(* Per-element comparison normalized by the clean data's overall
   magnitude: near-zero elements must not turn round-off into SDC, which
   a plain relative error per element would. *)
let classify_array ~clean ~tol corrupted =
  let scale = ref 0.0 in
  Array.iter (fun v -> scale := Float.max !scale (Float.abs v)) clean;
  let scale = Float.max !scale 1e-300 in
  let worst = ref 0.0 and broken = ref false in
  Array.iteri
    (fun i v ->
      if not (Float.is_finite v) then broken := true
      else worst := Float.max !worst (Float.abs (v -. clean.(i)) /. scale))
    corrupted;
  if !broken then Detected else if !worst > tol then Sdc else Benign

(* --- the campaign engine --- *)

(* Every trial's RNG is derived from (campaign seed, structure index,
   trial index) through the splitmix64 finalizer, so trials are
   independent of each other and of evaluation order: running them in
   parallel, in any partition, reproduces the serial outcomes exactly. *)
let trial_rng ~seed ~structure_index ~trial =
  Dvf_util.Rng.create
    (Dvf_util.Rng.sub_seed (Dvf_util.Rng.sub_seed seed structure_index) trial)

let run_campaigns ?(seed = 1234) ?trials inj =
  let trials = Option.value trials ~default:inj.default_trials in
  if trials < 1 then invalid_arg "Fault_injection.run_campaigns: trials < 1";
  List.mapi
    (fun si structure ->
      let outcomes =
        List.init trials (fun t ->
            fst
              (inj.trial ~structure
                 (trial_rng ~seed ~structure_index:si ~trial:t)))
      in
      tally structure outcomes)
    inj.structures

let vm_injector ?(trials = 400) p =
  let clean = vm_clean_checksum p in
  {
    label = Printf.sprintf "VM n=%d" p.Vm.n;
    spec = Vm.spec p;
    flops = Vm.flop_count p;
    structures = [ "A"; "B"; "C" ];
    default_trials = trials;
    trial =
      (fun ~structure rng ->
        let checksum, frac = vm_trial p ~rng ~structure in
        (classify_value ~clean ~tol:1e-12 checksum, frac));
  }

let vm_campaign ?(trials = 400) ?(seed = 1234) p =
  run_campaigns ~seed ~trials (vm_injector p)

(* --- CG --- *)

let cg_trial (p : Cg.params) ~rng ~structure ~clean_iterations xstar =
  let n = p.Cg.n in
  let b = Spd.rhs_of_solution n xstar in
  let a = Array.make (n * n) 0.0 in
  Spd.fill_matrix n (fun i j v -> a.((i * n) + j) <- v);
  let x = Array.make n 0.0 in
  let pvec = Array.copy b in
  let r = Array.copy b in
  let flip_at = 1 + Dvf_util.Rng.int rng clean_iterations in
  let bit = Dvf_util.Rng.int rng 64 in
  let inject () =
    let target =
      match structure with
      | "A" -> a
      | "x" -> x
      | "p" -> pvec
      | "r" -> r
      | _ -> assert false
    in
    let e = Dvf_util.Rng.int rng (Array.length target) in
    target.(e) <- flip_bit target.(e) ~bit
  in
  let module O = struct
    let n = n

    let a_row_dot_p i =
      let acc = ref 0.0 in
      let base = i * n in
      for j = 0 to n - 1 do
        acc := !acc +. (a.(base + j) *. pvec.(j))
      done;
      !acc

    let get_x i = x.(i)
    let set_x i v = x.(i) <- v
    let get_p i = pvec.(i)
    let set_p i v = pvec.(i) <- v
    let get_r i = r.(i)
    let set_r i v = r.(i) <- v
  end in
  let _, residual =
    Cg.iterate
      ~on_iteration:(fun k -> if k = flip_at then inject ())
      (module O)
      ~max_iterations:(4 * clean_iterations)
      ~tolerance:p.Cg.tolerance
  in
  let outcome =
    if Float.is_nan residual || not (residual <= p.Cg.tolerance) then Detected
    else begin
      let err = ref 0.0 in
      for i = 0 to n - 1 do
        err := Float.max !err (Float.abs (x.(i) -. xstar.(i)))
      done;
      if !err > 1e-5 then Sdc else Benign
    end
  in
  (outcome, frac_of ~at:flip_at ~max_at:clean_iterations)

let cg_injector ?(trials = 200) p =
  let clean = Cg.run_untraced p in
  let clean_iterations = max 1 clean.Cg.iterations in
  let xstar = Spd.known_solution (Dvf_util.Rng.create p.Cg.seed) p.Cg.n in
  {
    label = Printf.sprintf "CG n=%d" p.Cg.n;
    spec = Cg.spec ~iterations:clean_iterations p;
    flops = clean.Cg.flops;
    structures = [ "A"; "x"; "p"; "r" ];
    default_trials = trials;
    trial =
      (fun ~structure rng -> cg_trial p ~rng ~structure ~clean_iterations xstar);
  }

let cg_campaign ?(trials = 200) ?(seed = 91) p =
  run_campaigns ~seed ~trials (cg_injector p)

(* --- NB / MG / FT / MC, over the kernels' [run_injected] hooks --- *)

let flatten_pairs a =
  Array.init
    (2 * Array.length a)
    (fun i ->
      let x, y = a.(i / 2) in
      if i land 1 = 0 then x else y)

let nb_injector ?(trials = 200) p =
  let identity_pick _ = 0 in
  let clean =
    flatten_pairs
      (Barnes_hut.run_injected p ~structure:`P ~flip_at:0 ~pick:identity_pick
         ~flip:Fun.id)
  in
  let reference = Barnes_hut.run_untraced p in
  let steps = Barnes_hut.injection_steps p in
  {
    label = Printf.sprintf "NB n=%d" p.Barnes_hut.particles;
    spec = Barnes_hut.spec ~result:reference p;
    flops = reference.Barnes_hut.flops;
    structures = [ "T"; "P" ];
    default_trials = trials;
    trial =
      (fun ~structure rng ->
        let s =
          match structure with "T" -> `T | "P" -> `P | _ -> assert false
        in
        let flip_at = Dvf_util.Rng.int rng (steps + 1) in
        let bit = Dvf_util.Rng.int rng 64 in
        ( classify_array ~clean ~tol:1e-9
            (flatten_pairs
               (Barnes_hut.run_injected p ~structure:s ~flip_at
                  ~pick:(Dvf_util.Rng.int rng) ~flip:(flip_bit ~bit))),
          frac_of ~at:flip_at ~max_at:steps ));
  }

let mg_injector ?(trials = 200) p =
  let identity_pick _ = 0 in
  let clean_res, clean_sum =
    Multigrid.run_injected p ~structure:`U ~flip_at:0 ~pick:identity_pick
      ~flip:Fun.id
  in
  let phases = Multigrid.injection_phases p in
  (* The solution sum can cancel towards zero, so deviations are measured
     against the problem's own magnitude (the initial residual). *)
  let scale =
    Float.max (Float.abs clean_sum)
      (Float.max clean_res.Multigrid.initial_residual 1e-30)
  in
  {
    label = Printf.sprintf "MG m=%d" p.Multigrid.m;
    spec = Multigrid.spec p;
    flops = clean_res.Multigrid.flops;
    structures = [ "R"; "U"; "V" ];
    default_trials = trials;
    trial =
      (fun ~structure rng ->
        let s =
          match structure with
          | "R" -> `R
          | "U" -> `U
          | "V" -> `V
          | _ -> assert false
        in
        let flip_at = Dvf_util.Rng.int rng (phases + 1) in
        let bit = Dvf_util.Rng.int rng 64 in
        let res, usum =
          Multigrid.run_injected p ~structure:s ~flip_at
            ~pick:(Dvf_util.Rng.int rng) ~flip:(flip_bit ~bit)
        in
        let final = res.Multigrid.final_residual in
        let outcome =
          if not (Float.is_finite final && Float.is_finite usum) then Detected
          else if final > 10.0 *. clean_res.Multigrid.initial_residual then
            (* a solver driver would flag the failure to contract *)
            Detected
          else if
            Float.abs (usum -. clean_sum) /. scale > 1e-9
            || Float.abs (final -. clean_res.Multigrid.final_residual) /. scale
               > 1e-9
          then Sdc
          else Benign
        in
        (outcome, frac_of ~at:flip_at ~max_at:phases));
  }

let ft_injector ?(trials = 300) p =
  let identity_pick _ = 0 in
  let clean =
    flatten_pairs
      (Array.map
         (fun (c : Complex.t) -> (c.Complex.re, c.Complex.im))
         (Fft.run_injected p ~flip_at:0 ~pick:identity_pick ~flip:Fun.id))
  in
  let reference = Fft.run_untraced p in
  let passes = Fft.injection_passes p in
  {
    label = Printf.sprintf "FT n=%d" p.Fft.n;
    spec = Fft.spec p;
    flops = reference.Fft.flops;
    structures = [ "X" ];
    default_trials = trials;
    trial =
      (fun ~structure rng ->
        assert (String.equal structure "X");
        let flip_at = Dvf_util.Rng.int rng (passes + 1) in
        let bit = Dvf_util.Rng.int rng 64 in
        ( classify_array ~clean ~tol:1e-12
            (flatten_pairs
               (Array.map
                  (fun (c : Complex.t) -> (c.Complex.re, c.Complex.im))
                  (Fft.run_injected p ~flip_at ~pick:(Dvf_util.Rng.int rng)
                     ~flip:(flip_bit ~bit)))),
          frac_of ~at:flip_at ~max_at:passes ));
  }

let mc_injector ?(trials = 200) p =
  let identity_pick _ = 0 in
  let clean =
    Monte_carlo.run_injected p ~structure:`G ~flip_at:0 ~pick:identity_pick
      ~flip:Fun.id
  in
  let lookups = Monte_carlo.injection_lookups p in
  {
    label = Printf.sprintf "MC lookups=%d" p.Monte_carlo.lookups;
    spec = Monte_carlo.spec p;
    flops = clean.Monte_carlo.flops;
    structures = [ "G"; "E" ];
    default_trials = trials;
    trial =
      (fun ~structure rng ->
        let s = match structure with "G" -> `G | "E" -> `E | _ -> assert false in
        let flip_at = Dvf_util.Rng.int rng lookups in
        let bit = Dvf_util.Rng.int rng 64 in
        let res =
          Monte_carlo.run_injected p ~structure:s ~flip_at
            ~pick:(Dvf_util.Rng.int rng) ~flip:(flip_bit ~bit)
        in
        ( classify_value ~clean:clean.Monte_carlo.total_xs ~tol:1e-12
            res.Monte_carlo.total_xs,
          frac_of ~at:flip_at ~max_at:(lookups - 1) ));
  }

let sdc_interval ?z c =
  if c.trials = 0 then (0.0, 1.0)
  else Dvf_util.Maths.wilson_interval ?z ~successes:c.sdc ~trials:c.trials ()

let to_table ?(title = "Fault-injection campaign") campaigns =
  let t =
    Dvf_util.Table.create ~title
      [
        ("structure", Dvf_util.Table.Left); ("trials", Dvf_util.Table.Right);
        ("benign", Dvf_util.Table.Right); ("SDC", Dvf_util.Table.Right);
        ("detected", Dvf_util.Table.Right); ("SDC rate", Dvf_util.Table.Right);
        ("95% CI", Dvf_util.Table.Right);
      ]
  in
  List.iter
    (fun c ->
      let lo, hi = sdc_interval c in
      Dvf_util.Table.add_row t
        [
          c.structure; string_of_int c.trials; string_of_int c.benign;
          string_of_int c.sdc; string_of_int c.detected;
          Printf.sprintf "%.4f" (sdc_rate c);
          Printf.sprintf "[%.4f, %.4f]" lo hi;
        ])
    campaigns;
  t

let rank_by_sdc campaigns =
  List.map
    (fun c -> c.structure)
    (List.sort
       (fun a b ->
         match Float.compare (sdc_rate b) (sdc_rate a) with
         | 0 -> compare a.structure b.structure
         | c -> c)
       campaigns)
