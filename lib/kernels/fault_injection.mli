(** Statistical fault injection — the baseline methodology the paper
    argues DVF replaces (§I, §VI: "researchers have to perform a large
    amount of fault injection operations, which is prohibitively
    expensive").

    We implement it anyway, as the comparator: campaigns flip one random
    bit in one random element of one data structure at a uniformly random
    point of the execution, run to completion, and classify the outcome.
    Across many trials this estimates each structure's empirical
    vulnerability, which can be checked against the DVF ranking (the
    bench's [inject] section does exactly that).

    Outcome classes, following the soft-error literature:
    - [Benign]   — the final output matches the clean run (the flipped
                   value was dead, overwritten, or corrected);
    - [Sdc]      — silent data corruption: the run "succeeds" but its
                   output is wrong;
    - [Detected] — the application itself notices (NaN/Inf in the output,
                   or an iterative solver failing to converge). *)

type outcome = Benign | Sdc | Detected

type campaign = {
  structure : string;
  trials : int;
  benign : int;
  sdc : int;
  detected : int;
}

(** A pluggable per-workload fault injector: everything a generic
    campaign engine needs to bombard one kernel configuration.  [trial]
    runs the kernel once with a single strike on [structure], drawing the
    strike point, element and bit from the supplied RNG, and classifies
    the outcome; it also reports {e when} the flip landed as a fraction
    of the kernel's injection-slot range (0 = before the first slot,
    1 = after the last), derived from the already-drawn slot so the RNG
    stream and outcomes are unchanged by the stamp.  [spec] and [flops]
    describe the same configuration analytically, so empirical SDC rates
    can be correlated against DVF ({!Dvf_core.Injection} builds that
    report, and `dvf windows` bins SDC rate by the flip-time stamp). *)
type injector = {
  label : string;             (** e.g. ["CG n=60"], for reports *)
  spec : Access_patterns.App_spec.t;
  flops : int;
  structures : string list;   (** names match [spec]'s structures *)
  default_trials : int;
  trial : structure:string -> Dvf_util.Rng.t -> outcome * float;
}

val sdc_rate : campaign -> float
(** [sdc / trials] — the probability that a single strike on this
    structure silently corrupts the output. *)

val unsafe_rate : campaign -> float
(** [(sdc + detected) / trials]. *)

val flip_bit : float -> bit:int -> float
(** Flip one bit (0..63) of a double's IEEE-754 representation. *)

val tally : string -> outcome list -> campaign
(** Count outcomes into a campaign record for [structure]. *)

val trial_rng : seed:int -> structure_index:int -> trial:int -> Dvf_util.Rng.t
(** The RNG for one trial, derived from the campaign seed through two
    splitmix64 rounds ({!Dvf_util.Rng.sub_seed}).  This is the seeding
    contract {!run_campaigns} and any parallel engine must share: equal
    coordinates give equal streams regardless of evaluation order. *)

val run_campaigns : ?seed:int -> ?trials:int -> injector -> campaign list
(** One campaign per structure of [inj], [trials] trials each (default
    [inj.default_trials]; [seed] defaults to 1234).  Every trial's RNG is
    derived from [(seed, structure index, trial index)] via splitmix64
    ({!Dvf_util.Rng.sub_seed}), so outcomes are independent of evaluation
    order — a parallel engine partitioning the trials reproduces this
    serial run bit for bit. *)

val vm_injector : ?trials:int -> Vm.params -> injector
(** Structures A, B, C: the flip lands before a uniformly random loop
    iteration; the corrupted checksum is compared against the clean one.
    [trials] sets [default_trials] (400). *)

val cg_injector : ?trials:int -> Cg.params -> injector
(** Structures A, x, p, r: the flip lands at a uniformly random iteration
    boundary of a converging solve.  [Detected] = the solver fails to
    reach its tolerance within an iteration headroom; [Sdc] = it
    converges to a wrong solution.  [trials] sets [default_trials]
    (200). *)

val nb_injector : ?trials:int -> Barnes_hut.params -> injector
(** Structures T (live tree node fields) and P (particles + force
    accumulators); outputs are the per-particle forces.  [trials] sets
    [default_trials] (200). *)

val mg_injector : ?trials:int -> Multigrid.params -> injector
(** Structures R, U, V; observables are the finest-level solution sum and
    the final residual.  [Detected] = non-finite values or a residual
    more than 10x the clean initial residual (a failure to contract a
    solver driver would flag).  [trials] sets [default_trials] (200). *)

val ft_injector : ?trials:int -> Fft.params -> injector
(** Structure X (the signal array); the transformed spectrum is compared
    element-wise against the clean one.  [trials] sets [default_trials]
    (300). *)

val mc_injector : ?trials:int -> Monte_carlo.params -> injector
(** Structures G (energy grid) and E (nuclide data); the accumulated
    cross section is compared against the clean total.  [trials] sets
    [default_trials] (200). *)

val vm_campaign :
  ?trials:int -> ?seed:int -> Vm.params -> campaign list
(** [run_campaigns] over {!vm_injector}. *)

val cg_campaign :
  ?trials:int -> ?seed:int -> Cg.params -> campaign list
(** [run_campaigns] over {!cg_injector} ([seed] defaults to 91). *)

val sdc_interval : ?z:float -> campaign -> float * float
(** Wilson score interval for the SDC rate ({!Dvf_util.Maths.wilson_interval};
    95% by default).  [(0, 1)] for an empty campaign. *)

val to_table : ?title:string -> campaign list -> Dvf_util.Table.t
(** Counts, SDC rate (4 decimal places) and its 95% Wilson interval.
    [title] defaults to ["Fault-injection campaign"]. *)

val rank_by_sdc : campaign list -> string list
(** Structure names by descending SDC {e rate} (ties broken by name), so
    campaigns with unequal trial counts rank correctly. *)
