module Tracked = Memtrace.Tracked
module Ap = Access_patterns

type params = {
  grid_points : int;
  nuclides : int;
  lookups : int;
  seed : int;
}

let make_params ?(grid_points = 4096) ?(nuclides = 16) ?(seed = 19) lookups =
  if grid_points < 2 then invalid_arg "Monte_carlo.make_params: grid_points < 2";
  if nuclides < 1 then invalid_arg "Monte_carlo.make_params: nuclides < 1";
  if lookups < 1 then invalid_arg "Monte_carlo.make_params: lookups < 1";
  { grid_points; nuclides; lookups; seed }

let verification = make_params 1_000
let profiling = make_params ~grid_points:16_384 ~nuclides:32 100_000

type result = {
  total_xs : float;
  flops : int;
}

(* Synthetic cross sections: smooth in energy, distinct per nuclide. *)
let xs_value ~nuclide ~point =
  1.0
  +. (0.1 *. float_of_int nuclide)
  +. sin (0.01 *. float_of_int point *. float_of_int (nuclide + 1))

let run_with p ~read_grid ~read_xs =
  let rng = Dvf_util.Rng.create p.seed in
  let g = p.grid_points in
  let total = ref 0.0 in
  let flops = ref 0 in
  for _ = 1 to p.lookups do
    let energy = Dvf_util.Rng.float rng 1.0 in
    let fidx = energy *. float_of_int (g - 1) in
    let idx = int_of_float fidx in
    let frac = fidx -. float_of_int idx in
    let e_lo = read_grid idx and e_hi = read_grid (idx + 1) in
    ignore e_lo;
    ignore e_hi;
    (* Gather and interpolate one cross section per nuclide. *)
    for nuc = 0 to p.nuclides - 1 do
      let lo = read_xs ~nuclide:nuc ~point:idx in
      let hi = read_xs ~nuclide:nuc ~point:(idx + 1) in
      total := !total +. (((1.0 -. frac) *. lo) +. (frac *. hi));
      flops := !flops + 4
    done
  done;
  { total_xs = !total; flops = !flops }

let run registry recorder p =
  let g = p.grid_points in
  let grid =
    Tracked.init registry recorder ~name:"G" ~elem_size:8 g (fun i ->
        float_of_int i /. float_of_int (g - 1))
  in
  let xs =
    Tracked.init registry recorder ~name:"E" ~elem_size:8 (g * p.nuclides)
      (fun i -> xs_value ~nuclide:(i mod p.nuclides) ~point:(i / p.nuclides))
  in
  (* Construction pass, as the random-access model assumes. *)
  for i = 0 to Tracked.length grid - 1 do
    Tracked.touch grid i
  done;
  for i = 0 to Tracked.length xs - 1 do
    Tracked.touch xs i
  done;
  run_with p
    ~read_grid:(fun i -> Tracked.get grid i)
    ~read_xs:(fun ~nuclide ~point ->
      (* Row-major by grid point: a lookup's gathers land in one row. *)
      Tracked.get xs ((point * p.nuclides) + nuclide))

let run_untraced p =
  let g = p.grid_points in
  let grid = Array.init g (fun i -> float_of_int i /. float_of_int (g - 1)) in
  run_with p
    ~read_grid:(fun i -> grid.(i))
    ~read_xs:(fun ~nuclide ~point -> xs_value ~nuclide ~point)

let injection_lookups p = p.lookups

(* Fault-injection entry.  Unlike [run_with] — which knows the grid is
   uniform and derives the interpolation fraction analytically — this
   loop computes the fraction from the grid energies it reads, the way
   XSBench does; otherwise every strike on G would be trivially dead.
   The clean reference is therefore this same function with
   [flip = Fun.id], not [run_untraced]. *)
let run_injected p ~structure ~flip_at ~pick ~flip =
  let g = p.grid_points in
  let grid = Array.init g (fun i -> float_of_int i /. float_of_int (g - 1)) in
  let xs =
    Array.init (g * p.nuclides) (fun i ->
        xs_value ~nuclide:(i mod p.nuclides) ~point:(i / p.nuclides))
  in
  let inject () =
    let target = match structure with `G -> grid | `E -> xs in
    let e = pick (Array.length target) in
    target.(e) <- flip target.(e)
  in
  let rng = Dvf_util.Rng.create p.seed in
  let total = ref 0.0 in
  let flops = ref 0 in
  for step = 0 to p.lookups - 1 do
    if step = flip_at then inject ();
    let energy = Dvf_util.Rng.float rng 1.0 in
    let fidx = energy *. float_of_int (g - 1) in
    let idx = int_of_float fidx in
    let e_lo = grid.(idx) and e_hi = grid.(idx + 1) in
    let frac = (energy -. e_lo) /. (e_hi -. e_lo) in
    for nuc = 0 to p.nuclides - 1 do
      let lo = xs.((idx * p.nuclides) + nuc) in
      let hi = xs.(((idx + 1) * p.nuclides) + nuc) in
      total := !total +. (((1.0 -. frac) *. lo) +. (frac *. hi));
      flops := !flops + 4
    done
  done;
  { total_xs = !total; flops = !flops }

let spec p =
  let g_bytes = 8 * p.grid_points in
  let e_bytes = 8 * p.grid_points * p.nuclides in
  let total = float_of_int (g_bytes + e_bytes) in
  let r_g = float_of_int g_bytes /. total in
  let r_e = float_of_int e_bytes /. total in
  let random name elements visits run_length ratio =
    {
      Ap.App_spec.name;
      bytes = 8 * elements;
      pattern =
        Some
          (Ap.Pattern.Random
             (Ap.Random_access.make ~run_length ~elements ~elem_size:8
                ~visits:(min visits elements) ~iterations:p.lookups
                ~cache_ratio:ratio ()));
    }
  in
  Ap.App_spec.make ~app_name:"MC"
    ~structures:
      [
        (* A lookup reads two adjacent grid energies (one run of 2) and
           gathers one row of nuclide data per bracketing grid point
           (runs of [nuclides] contiguous values). *)
        random "G" p.grid_points 2 2 r_g;
        random "E" (p.grid_points * p.nuclides) (2 * p.nuclides) p.nuclides r_e;
      ]
    ()
