(** Monte Carlo macroscopic cross-section lookup (paper Table II, the
    XSBench benchmark).

    Two structures are accessed randomly and concurrently, as in XSBench:

    - "G": the unionized energy grid ([grid_points] entries, 8-byte
      energies, uniformly spaced so a lookup indexes directly);
    - "E": the nuclide cross-section data ([grid_points * nuclides]
      entries, 8 bytes each; a lookup gathers one entry per nuclide at the
      energy's grid row and interpolates with the next row).

    Each of the [lookups] iterations samples a random energy, reads the
    two bracketing grid entries from G and [2 * nuclides] entries from E,
    and accumulates the macroscopic cross section.  The paper splits the
    cache between G and E proportionally to their sizes
    ([r_G = S_G / (S_G + S_E)]); {!spec} does the same. *)

type params = {
  grid_points : int;
  nuclides : int;
  lookups : int;
  seed : int;
}

val make_params : ?grid_points:int -> ?nuclides:int -> ?seed:int -> int -> params
(** [make_params lookups]; defaults: 4096 grid points, 16 nuclides. *)

val verification : params
(** Table V: size small, 10^3 lookups. *)

val profiling : params
(** Table VI: size small, 10^5 lookups, on a 16384-point grid with 32
    nuclides (XSBench's "small" data is hundreds of MB; this keeps its
    defining property — nuclide data far larger than any cache — at a
    size the analytical sweep evaluates instantly). *)

type result = {
  total_xs : float;   (** accumulated macroscopic cross section *)
  flops : int;
}

val run : Memtrace.Region.t -> Memtrace.Recorder.t -> params -> result
val run_untraced : params -> result

val spec : params -> Access_patterns.App_spec.t
(** Random-access models for G (k = 2 visits/lookup) and E
    (k = 2 * nuclides visits/lookup) with proportional cache shares. *)

val injection_lookups : params -> int
(** Number of lookup boundaries a fault can land on; {!run_injected}'s
    [flip_at] ranges over [0 .. injection_lookups - 1] (G and E are pure
    inputs, so a strike after the last lookup cannot reach the output). *)

val run_injected :
  params ->
  structure:[ `G | `E ] ->
  flip_at:int ->
  pick:(int -> int) ->
  flip:(float -> float) ->
  result
(** Untraced lookups with one fault injected before lookup [flip_at]:
    [pick len] chooses the element of the materialized grid (G) or
    nuclide table (E), [flip] corrupts it.  The interpolation fraction is
    computed from the grid energies actually read (XSBench-style), so the
    clean reference is this function with [flip = Fun.id] — {e not}
    [run_untraced], whose fraction is analytic. *)
