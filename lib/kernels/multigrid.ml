module Tracked = Memtrace.Tracked
module Ap = Access_patterns

type params = {
  m : int;
  levels : int;
  v_cycles : int;
  post_smooth : int;
  coarse_smooth : int;
  seed : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let max_levels m =
  let rec loop l s = if s / 2 >= 4 then loop (l + 1) (s / 2) else l in
  loop 1 m

let make_params ?levels ?(v_cycles = 2) ?(post_smooth = 2) ?(coarse_smooth = 8)
    ?(seed = 11) m =
  if m < 8 || not (is_power_of_two m) then
    invalid_arg "Multigrid.make_params: m must be a power of two >= 8";
  let levels = match levels with Some l -> l | None -> max_levels m in
  if levels < 1 || m lsr (levels - 1) < 4 then
    invalid_arg "Multigrid.make_params: too many levels";
  if v_cycles < 1 then invalid_arg "Multigrid.make_params: v_cycles < 1";
  { m; levels; v_cycles; post_smooth; coarse_smooth; seed }

let verification = make_params 32
let profiling = make_params ~v_cycles:1 64

type result = {
  initial_residual : float;
  final_residual : float;
  flops : int;
}

let level_size p l =
  if l < 0 || l >= p.levels then invalid_arg "Multigrid.level_size";
  p.m lsr l

let level_offset p l =
  let off = ref 0 in
  for j = 0 to l - 1 do
    let s = level_size p j in
    off := !off + (s * s * s)
  done;
  !off

let hierarchy_elements p = level_offset p (p.levels - 1) +
  (let s = level_size p (p.levels - 1) in s * s * s)

(* Abstract storage interface: the traced/untraced kernels and the spec's
   reference-stream generator all execute the very same V-cycle through
   it, which pins the template model to the kernel's true access order. *)
module type Ops = sig
  val get_r : int -> float
  val set_r : int -> float -> unit
  val get_u : int -> float
  val set_u : int -> float -> unit
  val get_v : int -> float
end

let lin s i j k = (((i * s) + j) * s) + k

let for_interior s f =
  for i = 1 to s - 2 do
    for j = 1 to s - 2 do
      for k = 1 to s - 2 do
        f i j k
      done
    done
  done

(* [on_phase] fires before every sweep of the cycle (residual, each
   restriction, each smoothing pass, each prolongation) — the fault
   injector's hook; the default is a no-op so traced/untraced runs are
   untouched. *)
let v_cycle ?(on_phase = fun () -> ()) (module O : Ops) p ~flops =
  let finest = level_size p 0 in
  (* Relax A U_l = RHS_l in place (Gauss-Seidel, 7-point Laplacian). *)
  let smooth l ~rhs_is_v =
    let s = level_size p l in
    let off = level_offset p l in
    let s2 = s * s in
    for_interior s (fun i j k ->
        let c = off + lin s i j k in
        let rhs = if rhs_is_v then O.get_v (lin s i j k) else O.get_r c in
        let sum =
          O.get_u (c - s2) +. O.get_u (c + s2) +. O.get_u (c - s)
          +. O.get_u (c + s) +. O.get_u (c - 1) +. O.get_u (c + 1)
        in
        O.set_u c ((rhs +. sum) /. 6.0);
        flops 8)
  in
  (* R_0 = V - A U_0 on the finest level. *)
  let residual_finest () =
    let s = finest in
    let s2 = s * s in
    for_interior s (fun i j k ->
        let c = lin s i j k in
        let sum =
          O.get_u (c - s2) +. O.get_u (c + s2) +. O.get_u (c - s)
          +. O.get_u (c + s) +. O.get_u (c - 1) +. O.get_u (c + 1)
        in
        O.set_r c (O.get_v c -. ((6.0 *. O.get_u c) -. sum));
        flops 9)
  in
  (* R_{l+1} = restrict R_l (center-weighted 7-point average). *)
  let restrict l =
    let sf = level_size p l and sc = level_size p (l + 1) in
    let off_f = level_offset p l and off_c = level_offset p (l + 1) in
    let sf2 = sf * sf in
    for_interior sc (fun i j k ->
        let f = off_f + lin sf (2 * i) (2 * j) (2 * k) in
        let nbrs =
          O.get_r (f - sf2) +. O.get_r (f + sf2) +. O.get_r (f - sf)
          +. O.get_r (f + sf) +. O.get_r (f - 1) +. O.get_r (f + 1)
        in
        O.set_r (off_c + lin sc i j k) ((0.5 *. O.get_r f) +. (nbrs /. 12.0));
        flops 9)
  in
  let zero_level l =
    let s = level_size p l in
    let off = level_offset p l in
    for idx = 0 to (s * s * s) - 1 do
      O.set_u (off + idx) 0.0
    done
  in
  (* U_l += prolong U_{l+1} (piecewise-constant injection). *)
  let prolong l =
    let sf = level_size p l and sc = level_size p (l + 1) in
    let off_f = level_offset p l and off_c = level_offset p (l + 1) in
    for_interior sf (fun i j k ->
        let ci = min (i / 2) (sc - 2) and cj = min (j / 2) (sc - 2)
        and ck = min (k / 2) (sc - 2) in
        let fidx = off_f + lin sf i j k in
        O.set_u fidx (O.get_u fidx +. O.get_u (off_c + lin sc ci cj ck));
        flops 1)
  in
  (* One sawtooth V-cycle. *)
  on_phase ();
  residual_finest ();
  for l = 0 to p.levels - 2 do
    on_phase ();
    zero_level (l + 1);
    restrict l
  done;
  for _ = 1 to p.coarse_smooth do
    on_phase ();
    smooth (p.levels - 1) ~rhs_is_v:false
  done;
  for l = p.levels - 2 downto 0 do
    on_phase ();
    prolong l;
    for _ = 1 to p.post_smooth do
      on_phase ();
      smooth l ~rhs_is_v:(l = 0)
    done
  done

(* Reporting only — computed through untraced accessors so the
   instrumentation does not pollute the trace (the paper excludes
   initialization/finalization phases from the analysis). *)
let residual_norm ~get_u ~get_v p =
  let s = level_size p 0 in
  let s2 = s * s in
  let acc = ref 0.0 in
  for_interior s (fun i j k ->
      let c = lin s i j k in
      let sum =
        get_u (c - s2) +. get_u (c + s2) +. get_u (c - s)
        +. get_u (c + s) +. get_u (c - 1) +. get_u (c + 1)
      in
      let r = get_v c -. ((6.0 *. get_u c) -. sum) in
      acc := !acc +. (r *. r));
  sqrt !acc

let gen_rhs p =
  let rng = Dvf_util.Rng.create p.seed in
  let s = p.m in
  let v = Array.make (s * s * s) 0.0 in
  (* NPB MG-style sparse charges: a few +1/-1 point sources. *)
  for charge = 0 to 19 do
    let i = 1 + Dvf_util.Rng.int rng (s - 2) in
    let j = 1 + Dvf_util.Rng.int rng (s - 2) in
    let k = 1 + Dvf_util.Rng.int rng (s - 2) in
    v.(lin s i j k) <- (if charge land 1 = 0 then 1.0 else -1.0)
  done;
  v

let run_generic p ~ops ~get_u ~get_v =
  let flop_total = ref 0 in
  let flops n = flop_total := !flop_total + n in
  let initial_residual = residual_norm ~get_u ~get_v p in
  for _ = 1 to p.v_cycles do
    v_cycle ops p ~flops
  done;
  {
    initial_residual;
    final_residual = residual_norm ~get_u ~get_v p;
    flops = !flop_total;
  }

let run registry recorder p =
  let total = hierarchy_elements p in
  let r = Tracked.make registry recorder ~name:"R" ~elem_size:8 total 0.0 in
  let u = Tracked.make registry recorder ~name:"U" ~elem_size:8 total 0.0 in
  let vrhs = Tracked.create registry recorder ~name:"V" ~elem_size:8 (gen_rhs p) in
  let ops =
    (module struct
      let get_r = Tracked.get r
      let set_r = Tracked.set r
      let get_u = Tracked.get u
      let set_u = Tracked.set u
      let get_v = Tracked.get vrhs
    end : Ops)
  in
  run_generic p ~ops
    ~get_u:(Tracked.get_silent u)
    ~get_v:(Tracked.get_silent vrhs)

let run_untraced p =
  let total = hierarchy_elements p in
  let r = Array.make total 0.0 in
  let u = Array.make total 0.0 in
  let vrhs = gen_rhs p in
  let ops =
    (module struct
      let get_r i = r.(i)
      let set_r i x = r.(i) <- x
      let get_u i = u.(i)
      let set_u i x = u.(i) <- x
      let get_v i = vrhs.(i)
    end : Ops)
  in
  run_generic p ~ops ~get_u:(fun i -> u.(i)) ~get_v:(fun i -> vrhs.(i))

let injection_phases p =
  let per_cycle =
    1 (* finest residual *)
    + (p.levels - 1) (* restrictions *)
    + p.coarse_smooth
    + ((p.levels - 1) * (1 + p.post_smooth)) (* prolong + post-smooths *)
  in
  p.v_cycles * per_cycle

(* Fault-injection entry: [run_untraced] plus one flip before sweep number
   [flip_at] (or after the last sweep when [flip_at = injection_phases]).
   Returns the result and the finest-level solution sum — the observable
   output an SDC must corrupt.  [flip = Fun.id] reproduces [run_untraced]
   bit-for-bit. *)
let run_injected p ~structure ~flip_at ~pick ~flip =
  let total = hierarchy_elements p in
  let r = Array.make total 0.0 in
  let u = Array.make total 0.0 in
  let vrhs = gen_rhs p in
  let inject () =
    let target =
      match structure with `R -> r | `U -> u | `V -> vrhs
    in
    let e = pick (Array.length target) in
    target.(e) <- flip target.(e)
  in
  let step = ref 0 in
  let on_phase () =
    if !step = flip_at then inject ();
    incr step
  in
  let ops =
    (module struct
      let get_r i = r.(i)
      let set_r i x = r.(i) <- x
      let get_u i = u.(i)
      let set_u i x = u.(i) <- x
      let get_v i = vrhs.(i)
    end : Ops)
  in
  let flop_total = ref 0 in
  let flops n = flop_total := !flop_total + n in
  let get_u i = u.(i) and get_v i = vrhs.(i) in
  let initial_residual = residual_norm ~get_u ~get_v p in
  for _ = 1 to p.v_cycles do
    v_cycle ~on_phase ops p ~flops
  done;
  if flip_at >= !step then inject ();
  let result =
    {
      initial_residual;
      final_residual = residual_norm ~get_u ~get_v p;
      flops = !flop_total;
    }
  in
  let finest = p.m * p.m * p.m in
  (result, Dvf_util.Maths.sum (Array.sub u 0 finest))

(* Reference-stream generator: execute the same V-cycle with phantom
   values, recording each structure's element indices in order.  This is
   the CGPMAC template input — derived from the pseudocode (the loop nest
   above), not from a memory trace. *)
let reference_streams p =
  (* Encode a store as (lnot idx) in the accumulating list, decoded into
     the (refs, writes) pair the template model consumes. *)
  let r_refs = ref [] and u_refs = ref [] and v_refs = ref [] in
  let nr = ref 0 and nu = ref 0 and nv = ref 0 in
  let ops =
    (module struct
      let get_r i = r_refs := i :: !r_refs; incr nr; 0.0
      let set_r i _ = r_refs := lnot i :: !r_refs; incr nr
      let get_u i = u_refs := i :: !u_refs; incr nu; 0.0
      let set_u i _ = u_refs := lnot i :: !u_refs; incr nu
      let get_v i = v_refs := i :: !v_refs; incr nv; 0.0
    end : Ops)
  in
  let flops _ = () in
  for _ = 1 to p.v_cycles do
    v_cycle ops p ~flops
  done;
  let to_arrays n lst =
    let refs = Array.make n 0 and writes = Array.make n false in
    let rec fill i = function
      | [] -> ()
      | x :: rest ->
          if x < 0 then begin
            refs.(i) <- lnot x;
            writes.(i) <- true
          end
          else refs.(i) <- x;
          fill (i - 1) rest
    in
    fill (n - 1) lst;
    (refs, writes)
  in
  (to_arrays !nr !r_refs, to_arrays !nu !u_refs, to_arrays !nv !v_refs)

let spec p =
  let total_bytes = 8 * hierarchy_elements p in
  let v_bytes = 8 * p.m * p.m * p.m in
  let grand_total = float_of_int ((2 * total_bytes) + v_bytes) in
  let ratio bytes = float_of_int bytes /. grand_total in
  let r_stream, u_stream, v_stream = reference_streams p in
  let templated name bytes (refs, writes) =
    {
      Ap.App_spec.name;
      bytes;
      pattern =
        Some
          (Ap.Pattern.Templated
             (Ap.Template.make ~cache_ratio:(ratio bytes) ~writes ~elem_size:8
                refs));
    }
  in
  Ap.App_spec.make ~app_name:"MG"
    ~structures:
      [
        templated "R" total_bytes r_stream;
        templated "U" total_bytes u_stream;
        templated "V" v_bytes v_stream;
      ]
    ()

(* Make the V-cycle reference streams available to Aspen models:
   pattern template(elem = 8, provider = "mg/R") etc.  The model's
   [cycles] parameter maps to [v_cycles]; smoothing depths default as in
   [make_params]. *)
let () =
  let params_of_env env =
    let get name = List.assoc_opt name env in
    let m =
      match get "m" with
      | Some m -> m
      | None -> failwith "provider \"mg/*\": model needs integer param 'm'"
    in
    try
      make_params ?levels:(get "levels") ?v_cycles:(get "cycles")
        ?post_smooth:(get "post_smooth") ?coarse_smooth:(get "coarse_smooth")
        m
    with Invalid_argument msg -> failwith msg
  in
  let provider pick env =
    let r, u, v = reference_streams (params_of_env env) in
    let refs, writes = pick r u v in
    (refs, Some writes)
  in
  Ap.Template_provider.register "mg/R" (provider (fun r _ _ -> r));
  Ap.Template_provider.register "mg/U" (provider (fun _ u _ -> u));
  Ap.Template_provider.register "mg/V" (provider (fun _ _ v -> v))
