(** 1-D FFT (paper Table II, the NPB FT benchmark's 1-D FFT segment).

    Iterative radix-2 Cooley–Tukey transform of [n] complex points
    (16-byte elements, like NPB FT's double-complex): a bit-reversal
    permutation pass followed by [log2 n] butterfly passes over the whole
    array.  Twiddle factors are computed on the fly, so the single major
    data structure is the signal array "X" — the paper's template-based
    pattern whose repeated full traversals produce the Fig. 5(e) DVF
    cliff once the array no longer fits in the cache.

    The CGPMAC template is generated from the same pass structure as the
    kernel (bit-reversal reference pairs, then per-pass butterfly index
    streams). *)

type params = {
  n : int;       (** transform size; power of two *)
  repeats : int; (** how many forward transforms to run *)
  seed : int;
}

val make_params : ?repeats:int -> ?seed:int -> int -> params

val verification : params
(** Class S scale: 2^14 points (the paper's FT working set is ~33 KB;
    2^14 x 16 B = 256 KB covers the small/large verification caches'
    interesting regime; the 1-D segment of class S). *)

val profiling : params
(** 2^11 points = 32 KB, matching the paper's reported ~33 KB FT working
    set in Fig. 5(e) — small enough that only the 16 KB cache thrashes,
    producing the cliff. *)

type result = {
  checksum : float;         (** sum of output magnitudes *)
  max_roundtrip_error : float;
      (** max |x - IFFT(FFT(x))| over the signal; validates the
          transform *)
  flops : int;
}

val run : Memtrace.Region.t -> Memtrace.Recorder.t -> params -> result
val run_untraced : params -> result

val naive_dft : float array -> float array -> float array * float array
(** [naive_dft re im] is the O(n^2) reference DFT, for testing. *)

val fft_in_place : Complex.t array -> unit
(** Forward transform of a plain array (untraced); length must be a power
    of two.  Exposed for tests and the quickstart example. *)

val injection_passes : params -> int
(** Number of pass boundaries a fault can land on
    ([repeats * (1 + log2 n)]: bit-reversal plus the butterfly passes);
    {!run_injected}'s [flip_at] ranges over [0 .. injection_passes]
    inclusive (the last value strikes the finished output). *)

val run_injected :
  params ->
  flip_at:int ->
  pick:(int -> int) ->
  flip:(float -> float) ->
  Complex.t array
(** The forward transforms of [run_untraced] with one fault injected into
    the signal array "X" before pass number [flip_at]: [pick (2n)]
    chooses among the real and imaginary components, [flip] corrupts the
    chosen one.  With [flip = Fun.id] the output is bit-identical to the
    clean transform — the injector's reference. *)

val spec : params -> Access_patterns.App_spec.t
(** Template pattern for "X" mirroring the kernel's pass structure. *)
