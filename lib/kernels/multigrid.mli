(** Multi-grid V-cycle (paper Table II, NPB MG's V-cycle kernel).

    3-D Poisson problem on an [m^3] grid (7-point Laplacian), solved by a
    sawtooth V-cycle: residual on the finest grid, restriction down the
    hierarchy, Gauss–Seidel relaxation on the coarsest level, then
    prolongation + post-smoothing back up.  All grid levels of a quantity
    live in one address region, as in NPB:

    - "R": residual / restricted right-hand-side hierarchy,
    - "U": solution hierarchy,
    - "V": right-hand side on the finest grid.

    The smoother is the template-based access pattern of the paper's
    Algorithm 3 generalized to the full 7-point stencil; the CGPMAC spec
    reproduces every sweep's reference stream exactly (the loops in
    {!spec} mirror the kernel's), so the template model is exercised on
    the real V-cycle traffic. *)

type params = {
  m : int;             (** finest grid dimension; power of two >= 8 *)
  levels : int;        (** hierarchy depth; coarsest grid is m / 2^(levels-1) *)
  v_cycles : int;
  post_smooth : int;   (** relaxation sweeps after each prolongation *)
  coarse_smooth : int; (** relaxation sweeps on the coarsest level *)
  seed : int;
}

val make_params :
  ?levels:int -> ?v_cycles:int -> ?post_smooth:int -> ?coarse_smooth:int ->
  ?seed:int -> int -> params
(** [make_params m]; [levels] defaults to the maximum depth with coarsest
    grid >= 4, [v_cycles] to 2, [post_smooth] to 2, [coarse_smooth] to 8. *)

val verification : params
(** Class S: 32^3 finest grid. *)

val profiling : params
(** Class W scaled to 64^3 (the analytical models evaluate at any size;
    the trace-driven verification is what needs a bounded grid). *)

type result = {
  initial_residual : float;
  final_residual : float;   (** L2 norm of [V - A U] on the finest grid *)
  flops : int;
}

val run : Memtrace.Region.t -> Memtrace.Recorder.t -> params -> result
val run_untraced : params -> result

val spec : params -> Access_patterns.App_spec.t
(** Template patterns for "R" and "U" (exact reference streams of the
    V-cycle sweeps), streaming for "V"; cache shares proportional to the
    structure sizes, as the paper splits the cache between concurrently
    accessed structures. *)

val level_size : params -> int -> int
(** Grid dimension of level [l]. *)

val level_offset : params -> int -> int
(** Element offset of level [l] within the hierarchy region. *)

val hierarchy_elements : params -> int
(** Total elements across all levels of R or U. *)

val injection_phases : params -> int
(** Number of sweep boundaries across all V-cycles a fault can land on;
    {!run_injected}'s [flip_at] ranges over [0 .. injection_phases]
    inclusive (the last value strikes after the final sweep). *)

val run_injected :
  params ->
  structure:[ `R | `U | `V ] ->
  flip_at:int ->
  pick:(int -> int) ->
  flip:(float -> float) ->
  result * float
(** Untraced V-cycles with one fault injected before sweep number
    [flip_at]: [pick len] chooses the element, [flip] corrupts it.
    Returns the result plus the finest-level solution sum (the observable
    output).  With [flip = Fun.id] both are bit-identical to a clean
    [run_untraced] — the injector's reference. *)
