(** Set-associative LRU cache simulator.

    This is the reproduction's substitute for the authors' "configurable
    cache simulator" (paper §IV): it consumes a per-structure address
    stream (from {!Memtrace}) and reports LLC misses and writebacks per
    data structure, which together define the measured number of main
    memory accesses the analytical models are verified against (Fig. 4).

    The replacement policy is strict LRU within each set, matching the
    paper ("the cache simulation is based on the popular LRU algorithm and
    can report the number of cache misses and writebacks").  Writes
    allocate (write-allocate, write-back). *)

type t

val create : Config.t -> t

val config : t -> Config.t
val stats : t -> Stats.t

val access : t -> owner:int -> write:bool -> addr:int -> size:int -> unit
(** Simulate one program reference of [size] bytes at byte address [addr]
    by owner (data structure) [owner].  The reference is split at cache-line
    boundaries; each touched line is looked up, counted as hit or miss, and
    installed on miss (evicting the set's LRU line, recording a writeback if
    dirty).  Raises [Invalid_argument] if [size <= 0] or [addr < 0]. *)

val touch_line : t -> owner:int -> write:bool -> line_addr:int -> bool
(** Low-level single-line lookup used by the trace driver and tests;
    [line_addr] is a byte address (any byte within the line).  Returns
    [true] on hit. *)

(** {2 Packed bulk interface}

    The hot path for replaying captured traces ({!Memtrace.Tape}): events
    are stored columnar as two unboxed [int] arrays — byte address, and a
    metadata word from {!pack_access} — and a whole chunk is driven
    through the simulator with one call. *)

val pack_access : owner:int -> write:bool -> size:int -> int
(** Pack one reference's metadata: bit 0 is the write flag, bits 1..30
    the size in bytes, the remaining high bits the owner id.  Raises
    [Invalid_argument] when [size] is outside [1 .. 2^30 - 1] or [owner]
    outside [0 .. max_int lsr 31] — far beyond anything the region
    registry hands out, but a loud failure beats silent truncation. *)

val unpack_access : int -> int * bool * int
(** [(owner, write, size)] of a word built by {!pack_access}. *)

val access_batch :
  t -> addrs:int array -> metas:int array -> pos:int -> len:int -> unit
(** Simulate [addrs.(pos .. pos+len-1)] (with matching {!pack_access}
    metadata in [metas]) as if each were passed to {!access} in order:
    same line splitting, same statistics, one bounds check and one call
    for the whole block.  Raises [Invalid_argument] on a range outside
    either array or on a negative address. *)

val flush : t -> unit
(** Evict everything, recording writebacks for dirty lines.  Called at the
    end of a simulation when the experiment counts end-of-run evictions. *)

val invalidate : t -> unit
(** Drop all contents without recording writebacks (cold restart between
    phases). *)

val resident_lines : t -> owner:int -> int
(** Number of lines currently cached for [owner] — used by tests and by the
    reuse-model validation experiments. *)
