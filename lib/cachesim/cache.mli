(** Set-associative LRU cache simulator.

    This is the reproduction's substitute for the authors' "configurable
    cache simulator" (paper §IV): it consumes a per-structure address
    stream (from {!Memtrace}) and reports LLC misses and writebacks per
    data structure, which together define the measured number of main
    memory accesses the analytical models are verified against (Fig. 4).

    The replacement policy is strict LRU within each set, matching the
    paper ("the cache simulation is based on the popular LRU algorithm and
    can report the number of cache misses and writebacks").  Writes
    allocate (write-allocate, write-back). *)

type t

val create : Config.t -> t

val config : t -> Config.t
val stats : t -> Stats.t

(** {2 Logical event clock and residency tracking}

    The cache keeps a logical clock [now]: the ordinal of the reference
    event being processed (batch walks advance it by the batch length,
    {!access}/{!touch_line} by one per call).  Attaching a
    {!Residency.t} turns on per-line phase accounting on that clock:
    every resident line carries the start time of its current clean or
    dirty phase, and fills, first dirtying writes, evictions and
    flushes close the open phase into the accumulator.  With no
    residency attached the specialized sharded walks are byte-for-byte
    the ones the throughput benchmarks measure; with one attached they
    fall back to the generic per-line path (slower, still exact). *)

val now : t -> int

val set_now : t -> int -> unit
(** Pin the clock — the replay driver sets it to the tape length (the
    run horizon) before {!flush} so end-of-run phase closures count
    exposure up to the horizon and no further.  Raises
    [Invalid_argument] on a negative time. *)

val attach_residency : t -> Residency.t -> unit
(** Start recording residency phases into the accumulator.  Attach
    before the first access (phase-start stamps are reset to 0). *)

val residency : t -> Residency.t option

val access : t -> owner:int -> write:bool -> addr:int -> size:int -> unit
(** Simulate one program reference of [size] bytes at byte address [addr]
    by owner (data structure) [owner].  The reference is split at cache-line
    boundaries; each touched line is looked up, counted as hit or miss, and
    installed on miss (evicting the set's LRU line, recording a writeback if
    dirty).  Raises [Invalid_argument] if [size <= 0] or [addr < 0]. *)

val touch_line : t -> owner:int -> write:bool -> line_addr:int -> bool
(** Low-level single-line lookup used by the trace driver and tests;
    [line_addr] is a byte address (any byte within the line).  Returns
    [true] on hit. *)

(** {2 Packed bulk interface}

    The hot path for replaying captured traces ({!Memtrace.Tape}): events
    are stored columnar as two unboxed [int] arrays — byte address, and a
    metadata word from {!pack_access} — and a whole chunk is driven
    through the simulator with one call. *)

val max_size : int
(** Largest reference size {!pack_access} can encode: [2^30 - 1]. *)

val max_owner : int
(** Largest owner id {!pack_access} can encode. *)

val pack_access : owner:int -> write:bool -> size:int -> int
(** Pack one reference's metadata: bit 0 is the write flag, bits 1..30
    the size in bytes, the remaining high bits the owner id.  Raises
    [Invalid_argument] when [size] is outside [1 .. 2^30 - 1] or [owner]
    outside [0 .. max_int lsr 31] — far beyond anything the region
    registry hands out, but a loud failure beats silent truncation. *)

val unpack_access : int -> int * bool * int
(** [(owner, write, size)] of a word built by {!pack_access}. *)

val access_batch :
  t -> addrs:int array -> metas:int array -> pos:int -> len:int -> unit
(** Simulate [addrs.(pos .. pos+len-1)] (with matching {!pack_access}
    metadata in [metas]) as if each were passed to {!access} in order:
    same line splitting, same statistics, one bounds check and one call
    for the whole block.  Raises [Invalid_argument] on a range outside
    either array or on a negative address. *)

(** {2 Set-sharded walks}

    Each set's LRU state is independent of every other set's, so a batch
    can be partitioned by set index with zero locking: a line belongs to
    shard [line land (eff - 1)] where [eff = min shards sets] (both
    powers of two, so the shard bits are the low bits of the set index
    and no set is split between shards).  Running every shard in
    [0 .. shards-1] over the same batch — in any order, on any domains —
    makes exactly the serial per-set decisions, so merging the shard
    caches' statistics reproduces the serial totals bit for bit. *)

val effective_shards : t -> shards:int -> int
(** [min shards sets]: the number of shards that actually own sets of
    this cache.  Shards [>= effective_shards] are no-ops for it.  Raises
    [Invalid_argument] if [shards] is not a positive power of two. *)

val access_batch_sharded :
  t ->
  addrs:int array ->
  metas:int array ->
  pos:int ->
  len:int ->
  shards:int ->
  shard:int ->
  unit
(** Like {!access_batch} but touching only the lines owned by [shard] of
    [shards].  [~shards:1 ~shard:0] is the full walk.  Raises
    [Invalid_argument] on a bad range, a negative address, a [shards]
    that is not a positive power of two, or [shard] outside
    [0 .. shards-1]. *)

val access_batch_feed :
  t ->
  addrs:int array ->
  metas:int array ->
  pos:int ->
  len:int ->
  shards:int ->
  shard:int ->
  fill:(owner:int -> line:int -> unit) ->
  spill:(owner:int -> line:int -> unit) ->
  unit
(** {!access_batch_sharded} that also reports the traffic a next cache
    level would see: [fill ~owner ~line] for every line miss (the demand
    fetch) and [spill ~owner ~line] for every dirty eviction (the
    write-back), with [line] the line {e number}.  A victim's spill is
    reported before the missing line's fill. *)

(** {2 Explicitly timed walks}

    A deeper hierarchy level's input events (fills and spills) carry the
    {e originating} program-event times, not this cache's own traffic
    count, so the caller supplies a parallel [times] array
    (non-decreasing event ordinals) instead of the implicit clock.  Used
    by {!Hierarchy} in timed mode; after the walk [now] is the last
    event's time. *)

val access_batch_timed :
  t ->
  addrs:int array ->
  metas:int array ->
  times:int array ->
  pos:int ->
  len:int ->
  unit
(** {!access_batch} with the clock set to [times.(i)] before event [i].
    Raises [Invalid_argument] on a bad range in any of the three
    arrays. *)

val access_batch_feed_timed :
  t ->
  addrs:int array ->
  metas:int array ->
  times:int array ->
  pos:int ->
  len:int ->
  fill:(owner:int -> line:int -> unit) ->
  spill:(owner:int -> line:int -> unit) ->
  unit
(** Timed unsharded {!access_batch_feed}. *)

val set_of_addr : t -> int -> int
(** Set index of a byte address — the sharding key.  Raises
    [Invalid_argument] on a negative address. *)

val flush : t -> unit
(** Evict everything, recording writebacks for dirty lines.  Called at the
    end of a simulation when the experiment counts end-of-run evictions.
    With residency attached, every surviving line's open phase is closed
    at the current clock (set {!set_now} to the run horizon first). *)

val flush_feed : t -> spill:(owner:int -> line:int -> unit) -> unit
(** {!flush} that also hands every dirty line's write-back to [spill]
    (slot order), so a next cache level can absorb end-of-run traffic. *)

val invalidate : t -> unit
(** Drop all contents without recording writebacks (cold restart between
    phases). *)

val resident_lines : t -> owner:int -> int
(** Number of lines currently cached for [owner] — used by tests and by the
    reuse-model validation experiments. *)
