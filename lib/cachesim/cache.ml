(* Slot state is stored structure-of-arrays per cache: for slot [s*CA+w]:
   tag (line number, -1 when invalid), owner, dirty flag and last-use stamp.
   LRU uses a monotonically increasing clock; 63-bit ints cannot wrap in
   any realistic simulation. *)

type t = {
  config : Config.t;
  stats : Stats.t;
  tags : int array;
  owners : int array;
  dirty : bool array;
  stamps : int array;
  mutable clock : int;
  line_shift : int;
  set_mask : int;
}

let log2 n =
  let rec loop acc n = if n <= 1 then acc else loop (acc + 1) (n lsr 1) in
  loop 0 n

let create config =
  let open Config in
  (* [Config.make] already enforces power-of-two geometry; re-check here
     because [line_shift]/[set_mask] silently mis-index otherwise, and a
     loud failure beats a subtly wrong simulation if the smart constructor
     is ever bypassed. *)
  if not (Config.is_power_of_two config.sets) then
    invalid_arg
      (Printf.sprintf "Cache.create: sets must be a power of two (got %d)"
         config.sets);
  if not (Config.is_power_of_two config.line) then
    invalid_arg
      (Printf.sprintf "Cache.create: line must be a power of two (got %d)"
         config.line);
  let slots = config.associativity * config.sets in
  {
    config;
    stats = Stats.create ();
    tags = Array.make slots (-1);
    owners = Array.make slots 0;
    dirty = Array.make slots false;
    stamps = Array.make slots 0;
    clock = 0;
    line_shift = log2 config.line;
    set_mask = config.sets - 1;
  }

let config t = t.config
let stats t = t.stats

(* Core lookup on a line *number* (byte address already shifted).  Every
   entry point funnels here, so [access]/[access_batch] split a request
   with one shift per boundary instead of the two integer divisions the
   byte-address API used to pay per line. *)
let touch t ~owner ~write ~line =
  let set = line land t.set_mask in
  let ca = t.config.Config.associativity in
  let base = set * ca in
  t.clock <- t.clock + 1;
  (* Search the set for the tag; track LRU victim as we go. *)
  let hit_way = ref (-1) in
  let victim = ref base in
  let victim_stamp = ref max_int in
  for w = base to base + ca - 1 do
    if t.tags.(w) = line then hit_way := w;
    if t.stamps.(w) < !victim_stamp then begin
      victim_stamp := t.stamps.(w);
      victim := w
    end
  done;
  let hit = !hit_way >= 0 in
  Stats.record_access t.stats ~owner ~write ~hit;
  if hit then begin
    let w = !hit_way in
    t.stamps.(w) <- t.clock;
    if write then t.dirty.(w) <- true
  end
  else begin
    let w = !victim in
    if t.tags.(w) >= 0 && t.dirty.(w) then
      Stats.record_writeback t.stats ~owner:t.owners.(w);
    t.tags.(w) <- line;
    t.owners.(w) <- owner;
    t.dirty.(w) <- write;
    t.stamps.(w) <- t.clock
  end;
  hit

let touch_line t ~owner ~write ~line_addr =
  if line_addr < 0 then invalid_arg "Cache.touch_line: negative address";
  touch t ~owner ~write ~line:(line_addr lsr t.line_shift)

let access t ~owner ~write ~addr ~size =
  if size <= 0 then invalid_arg "Cache.access: non-positive size";
  if addr < 0 then invalid_arg "Cache.access: negative address";
  let first = addr lsr t.line_shift in
  let last = (addr + size - 1) lsr t.line_shift in
  for line = first to last do
    ignore (touch t ~owner ~write ~line)
  done

(* --- packed bulk interface ---

   One event is two ints: the byte address, and a metadata word packing
   write (bit 0), size (bits 1..30) and owner (bits 31+).  The layout is
   shared with [Memtrace.Tape], which stores captured traces in columnar
   [addrs]/[metas] arrays and streams whole chunks back through
   [access_batch] — one closure dispatch and one bounds check per chunk
   instead of per event. *)

let meta_size_bits = 30
let max_size = (1 lsl meta_size_bits) - 1
let meta_owner_shift = meta_size_bits + 1
let max_owner = max_int lsr meta_owner_shift

let pack_access ~owner ~write ~size =
  if size <= 0 || size > max_size then
    invalid_arg
      (Printf.sprintf "Cache.pack_access: size %d out of range (1..%d)" size
         max_size);
  if owner < 0 || owner > max_owner then
    invalid_arg
      (Printf.sprintf "Cache.pack_access: owner %d out of range (0..%d)" owner
         max_owner);
  (owner lsl meta_owner_shift)
  lor (size lsl 1)
  lor (if write then 1 else 0)

let unpack_access meta =
  ( meta lsr meta_owner_shift,
    meta land 1 = 1,
    (meta lsr 1) land max_size )

let access_batch t ~addrs ~metas ~pos ~len =
  if
    pos < 0 || len < 0
    || pos + len > Array.length addrs
    || pos + len > Array.length metas
  then
    invalid_arg
      (Printf.sprintf
         "Cache.access_batch: bad range pos=%d len=%d (addrs %d, metas %d)"
         pos len (Array.length addrs) (Array.length metas));
  let shift = t.line_shift in
  for i = pos to pos + len - 1 do
    let addr = addrs.(i) in
    if addr < 0 then invalid_arg "Cache.access_batch: negative address";
    let meta = metas.(i) in
    let owner = meta lsr meta_owner_shift in
    let write = meta land 1 = 1 in
    let size = (meta lsr 1) land max_size in
    let first = addr lsr shift in
    let last = (addr + size - 1) lsr shift in
    for line = first to last do
      ignore (touch t ~owner ~write ~line)
    done
  done

let flush t =
  Array.iteri
    (fun w tag ->
      if tag >= 0 then begin
        if t.dirty.(w) then Stats.record_writeback t.stats ~owner:t.owners.(w);
        t.tags.(w) <- -1;
        t.dirty.(w) <- false;
        t.stamps.(w) <- 0
      end)
    t.tags

let invalidate t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.dirty 0 (Array.length t.dirty) false;
  Array.fill t.stamps 0 (Array.length t.stamps) 0

let resident_lines t ~owner =
  let count = ref 0 in
  Array.iteri
    (fun w tag -> if tag >= 0 && t.owners.(w) = owner then incr count)
    t.tags;
  !count
