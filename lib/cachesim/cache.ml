(* Slot state is stored structure-of-arrays per cache: for slot [s*CA+w]:
   tag (line number, -1 when invalid), owner, dirty flag and last-use stamp.
   LRU uses a monotonically increasing clock; 63-bit ints cannot wrap in
   any realistic simulation.

   Alongside the LRU clock the cache keeps a *logical event clock*
   [now]: the ordinal of the reference event being processed (batch
   entry points advance it by the batch length; the residency-enabled
   walks set it per event).  With a [Residency.t] attached, every
   line additionally carries the start time of its current clean or
   dirty phase in [res_start], and phase transitions — fill, first
   dirtying write, eviction, flush — close the open phase into the
   accumulator.  With no residency attached the specialized walks are
   untouched and [now] costs one addition per batch. *)

type t = {
  config : Config.t;
  stats : Stats.t;
  tags : int array;
  owners : int array;
  dirty : bool array;
  stamps : int array;
  mutable clock : int;
  line_shift : int;
  set_mask : int;
  mutable now : int;
  mutable res : Residency.t option;
  mutable res_start : int array;
}

let log2 n =
  let rec loop acc n = if n <= 1 then acc else loop (acc + 1) (n lsr 1) in
  loop 0 n

let create config =
  let open Config in
  (* [Config.make] already enforces power-of-two geometry; re-check here
     because [line_shift]/[set_mask] silently mis-index otherwise, and a
     loud failure beats a subtly wrong simulation if the smart constructor
     is ever bypassed. *)
  if not (Config.is_power_of_two config.sets) then
    invalid_arg
      (Printf.sprintf "Cache.create: sets must be a power of two (got %d)"
         config.sets);
  if not (Config.is_power_of_two config.line) then
    invalid_arg
      (Printf.sprintf "Cache.create: line must be a power of two (got %d)"
         config.line);
  let slots = config.associativity * config.sets in
  {
    config;
    stats = Stats.create ();
    tags = Array.make slots (-1);
    owners = Array.make slots 0;
    dirty = Array.make slots false;
    stamps = Array.make slots 0;
    clock = 0;
    line_shift = log2 config.line;
    set_mask = config.sets - 1;
    now = 0;
    res = None;
    res_start = [||];
  }

let config t = t.config
let stats t = t.stats
let now t = t.now
let set_now t time =
  if time < 0 then invalid_arg "Cache.set_now: negative time";
  t.now <- time

let residency t = t.res

let attach_residency t res =
  if Array.length t.res_start = 0 then
    t.res_start <- Array.make (Array.length t.tags) 0
  else Array.fill t.res_start 0 (Array.length t.res_start) 0;
  t.res <- Some res

(* Core lookup on a line *number* (byte address already shifted).  Every
   entry point funnels here, so [access]/[access_batch] split a request
   with one shift per boundary instead of the two integer divisions the
   byte-address API used to pay per line.  [fill]/[spill] report the
   next-level traffic of a miss ([nofeed] for callers that don't care);
   the hit/miss/writeback decisions are the contract every specialized
   walk below must reproduce exactly. *)
let nofeed ~owner:_ ~line:_ = ()

let touch_feed t ~owner ~write ~line ~fill ~spill =
  let set = line land t.set_mask in
  let ca = t.config.Config.associativity in
  let base = set * ca in
  t.clock <- t.clock + 1;
  (* Search the set for the tag; track LRU victim as we go. *)
  let hit_way = ref (-1) in
  let victim = ref base in
  let victim_stamp = ref max_int in
  for w = base to base + ca - 1 do
    if t.tags.(w) = line then hit_way := w;
    if t.stamps.(w) < !victim_stamp then begin
      victim_stamp := t.stamps.(w);
      victim := w
    end
  done;
  let hit = !hit_way >= 0 in
  Stats.record_access t.stats ~owner ~write ~hit;
  if hit then begin
    let w = !hit_way in
    t.stamps.(w) <- t.clock;
    if write then begin
      (match t.res with
      | Some res when not t.dirty.(w) ->
          (* first dirtying write: the clean phase ends here *)
          Residency.record_interval res ~owner:t.owners.(w) ~dirty:false
            ~t0:t.res_start.(w) ~t1:t.now;
          t.res_start.(w) <- t.now
      | _ -> ());
      t.dirty.(w) <- true
    end
  end
  else begin
    let w = !victim in
    if t.tags.(w) >= 0 then begin
      if t.dirty.(w) then begin
        Stats.record_writeback t.stats ~owner:t.owners.(w);
        spill ~owner:t.owners.(w) ~line:t.tags.(w)
      end;
      match t.res with
      | Some res ->
          Residency.record_interval res ~owner:t.owners.(w) ~dirty:t.dirty.(w)
            ~t0:t.res_start.(w) ~t1:t.now;
          Residency.record_eviction res ~owner:t.owners.(w)
      | None -> ()
    end;
    t.tags.(w) <- line;
    t.owners.(w) <- owner;
    t.dirty.(w) <- write;
    t.stamps.(w) <- t.clock;
    (match t.res with
    | Some res ->
        t.res_start.(w) <- t.now;
        Residency.record_fill res ~owner
    | None -> ());
    fill ~owner ~line
  end;
  hit

let touch t ~owner ~write ~line =
  touch_feed t ~owner ~write ~line ~fill:nofeed ~spill:nofeed

let touch_line t ~owner ~write ~line_addr =
  if line_addr < 0 then invalid_arg "Cache.touch_line: negative address";
  let hit = touch t ~owner ~write ~line:(line_addr lsr t.line_shift) in
  t.now <- t.now + 1;
  hit

let access t ~owner ~write ~addr ~size =
  if size <= 0 then invalid_arg "Cache.access: non-positive size";
  if addr < 0 then invalid_arg "Cache.access: negative address";
  let first = addr lsr t.line_shift in
  let last = (addr + size - 1) lsr t.line_shift in
  for line = first to last do
    ignore (touch t ~owner ~write ~line)
  done;
  t.now <- t.now + 1

(* --- packed bulk interface ---

   One event is two ints: the byte address, and a metadata word packing
   write (bit 0), size (bits 1..30) and owner (bits 31+).  The layout is
   shared with [Memtrace.Tape], which stores captured traces in columnar
   [addrs]/[metas] arrays and streams whole chunks back through
   [access_batch] — one closure dispatch and one bounds check per chunk
   instead of per event. *)

let meta_size_bits = 30
let max_size = (1 lsl meta_size_bits) - 1
let meta_owner_shift = meta_size_bits + 1
let max_owner = max_int lsr meta_owner_shift

let pack_access ~owner ~write ~size =
  if size <= 0 || size > max_size then
    invalid_arg
      (Printf.sprintf "Cache.pack_access: size %d out of range (1..%d)" size
         max_size);
  if owner < 0 || owner > max_owner then
    invalid_arg
      (Printf.sprintf "Cache.pack_access: owner %d out of range (0..%d)" owner
         max_owner);
  (owner lsl meta_owner_shift)
  lor (size lsl 1)
  lor (if write then 1 else 0)

let unpack_access meta =
  ( meta lsr meta_owner_shift,
    meta land 1 = 1,
    (meta lsr 1) land max_size )

(* Whole-range validation before any state change: a bad event mid-batch
   used to abort the walk half-applied, leaving tags and statistics torn.
   Validating up front means a failed batch leaves the cache untouched —
   and lets the walks below index with [Array.unsafe_get]. *)
let validate_batch ~addrs ~metas ~pos ~len =
  if
    pos < 0 || len < 0
    || pos + len > Array.length addrs
    || pos + len > Array.length metas
  then
    invalid_arg
      (Printf.sprintf
         "Cache.access_batch: bad range pos=%d len=%d (addrs %d, metas %d)"
         pos len (Array.length addrs) (Array.length metas));
  for i = pos to pos + len - 1 do
    if addrs.(i) < 0 then
      invalid_arg
        (Printf.sprintf "Cache.access_batch: negative address at index %d" i)
  done

let validate_times ~times ~pos ~len =
  if pos + len > Array.length times then
    invalid_arg
      (Printf.sprintf "Cache: bad times range pos=%d len=%d (times %d)" pos len
         (Array.length times))

let access_batch t ~addrs ~metas ~pos ~len =
  validate_batch ~addrs ~metas ~pos ~len;
  let shift = t.line_shift in
  let timed = t.res <> None in
  let now0 = t.now in
  for i = pos to pos + len - 1 do
    if timed then t.now <- now0 + (i - pos);
    let addr = addrs.(i) in
    let meta = metas.(i) in
    let owner = meta lsr meta_owner_shift in
    let write = meta land 1 = 1 in
    let size = (meta lsr 1) land max_size in
    let first = addr lsr shift in
    let last = (addr + size - 1) lsr shift in
    for line = first to last do
      ignore (touch t ~owner ~write ~line)
    done
  done;
  t.now <- now0 + len

(* --- set-sharded walks ---

   Every set's LRU state is independent of every other set's, so a batch
   can be partitioned by set index across domains with zero locking: a
   line belongs to shard [line land (eff - 1)] where [eff] is the shard
   count clamped to the set count (both powers of two, so the shard bits
   are the low bits of the set index and a set is never split between
   shards).  Each shard walks the whole batch and touches only its own
   lines; per-set decision sequences are exactly the serial ones, so
   [Stats.merge] over the shard caches reproduces the serial statistics
   bit for bit.

   This is the throughput path (the ROADMAP's >= 100M events/sec
   target), so the walk is specialized: addresses were validated up
   front (unsafe indexing is safe), and the way scan exits on the first
   tag match instead of tracking the LRU victim on hits — the victim
   scan runs only on a miss.  Decisions are identical to [touch]'s.

   With a residency accumulator attached the walk drops to the generic
   [touch] path with the event clock set per event — every shard sees
   every event ordinal, so per-line phase timestamps are identical to
   the serial walk's and the merged accumulators are bit-identical. *)

let check_shards ~shards ~shard =
  if shards <= 0 || shards land (shards - 1) <> 0 then
    invalid_arg
      (Printf.sprintf
         "Cache: shards must be a positive power of two (got %d)" shards);
  if shard < 0 || shard >= shards then
    invalid_arg
      (Printf.sprintf "Cache: shard %d out of range (0..%d)" shard (shards - 1))

let effective_shards t ~shards =
  if shards <= 0 || shards land (shards - 1) <> 0 then
    invalid_arg
      (Printf.sprintf
         "Cache: shards must be a positive power of two (got %d)" shards);
  min shards t.config.Config.sets

(* The shared residency-enabled walk: [touch_feed] per line of the
   shard, event clock set per event.  [fill]/[spill] are [nofeed] for
   the plain sharded walk. *)
let res_walk t ~addrs ~metas ~pos ~len ~mask ~shard ~fill ~spill =
  let shift = t.line_shift in
  let now0 = t.now in
  for i = pos to pos + len - 1 do
    t.now <- now0 + (i - pos);
    let addr = Array.unsafe_get addrs i in
    let meta = Array.unsafe_get metas i in
    let owner = meta lsr meta_owner_shift in
    let write = meta land 1 = 1 in
    let first = addr lsr shift in
    let last = (addr + ((meta lsr 1) land max_size) - 1) lsr shift in
    for line = first to last do
      if line land mask = shard then
        ignore (touch_feed t ~owner ~write ~line ~fill ~spill)
    done
  done

let access_batch_sharded t ~addrs ~metas ~pos ~len ~shards ~shard =
  check_shards ~shards ~shard;
  validate_batch ~addrs ~metas ~pos ~len;
  let eff = min shards t.config.Config.sets in
  let now0 = t.now in
  (* With fewer usable shards than requested (tiny cache), shards
     [eff..shards-1] own no sets of this cache: lines are partitioned by
     [line land (eff - 1)], which only shards [0..eff-1] can match. *)
  (if shard < eff then
     match t.res with
     | Some _ ->
         res_walk t ~addrs ~metas ~pos ~len ~mask:(eff - 1) ~shard
           ~fill:nofeed ~spill:nofeed
     | None ->
         let mask = eff - 1 in
         let shift = t.line_shift in
         let set_mask = t.set_mask in
         let ca = t.config.Config.associativity in
         let tags = t.tags
         and owners = t.owners
         and dirty = t.dirty
         and stamps = t.stamps in
         for i = pos to pos + len - 1 do
           let addr = Array.unsafe_get addrs i in
           let meta = Array.unsafe_get metas i in
           let owner = meta lsr meta_owner_shift in
           let write = meta land 1 = 1 in
           let first = addr lsr shift in
           let last = (addr + ((meta lsr 1) land max_size) - 1) lsr shift in
           for line = first to last do
             if line land mask = shard then begin
               let base = (line land set_mask) * ca in
               let limit = base + ca in
               t.clock <- t.clock + 1;
               let w = ref base in
               while !w < limit && Array.unsafe_get tags !w <> line do
                 incr w
               done;
               if !w < limit then begin
                 let w = !w in
                 Stats.record_access t.stats ~owner ~write ~hit:true;
                 Array.unsafe_set stamps w t.clock;
                 if write then Array.unsafe_set dirty w true
               end
               else begin
                 Stats.record_access t.stats ~owner ~write ~hit:false;
                 let victim = ref base and victim_stamp = ref max_int in
                 for w = base to limit - 1 do
                   if Array.unsafe_get stamps w < !victim_stamp then begin
                     victim_stamp := Array.unsafe_get stamps w;
                     victim := w
                   end
                 done;
                 let w = !victim in
                 if Array.unsafe_get tags w >= 0 && Array.unsafe_get dirty w
                 then
                   Stats.record_writeback t.stats
                     ~owner:(Array.unsafe_get owners w);
                 Array.unsafe_set tags w line;
                 Array.unsafe_set owners w owner;
                 Array.unsafe_set dirty w write;
                 Array.unsafe_set stamps w t.clock
               end
             end
           done
         done);
  t.now <- now0 + len

(* Same walk, but reporting the traffic a next cache level would see:
   [fill] for every line miss (the demand fetch) and [spill] for every
   dirty eviction (the write-back), both with the line *number*.  The
   victim's spill fires before the missing line's fill, matching the
   order [touch_feed] records statistics in. *)
let access_batch_feed t ~addrs ~metas ~pos ~len ~shards ~shard ~fill ~spill =
  check_shards ~shards ~shard;
  validate_batch ~addrs ~metas ~pos ~len;
  let eff = min shards t.config.Config.sets in
  let now0 = t.now in
  (if shard < eff then
     match t.res with
     | Some _ ->
         res_walk t ~addrs ~metas ~pos ~len ~mask:(eff - 1) ~shard ~fill ~spill
     | None ->
         let mask = eff - 1 in
         let shift = t.line_shift in
         let set_mask = t.set_mask in
         let ca = t.config.Config.associativity in
         let tags = t.tags
         and owners = t.owners
         and dirty = t.dirty
         and stamps = t.stamps in
         for i = pos to pos + len - 1 do
           let addr = Array.unsafe_get addrs i in
           let meta = Array.unsafe_get metas i in
           let owner = meta lsr meta_owner_shift in
           let write = meta land 1 = 1 in
           let first = addr lsr shift in
           let last = (addr + ((meta lsr 1) land max_size) - 1) lsr shift in
           for line = first to last do
             if line land mask = shard then begin
               let base = (line land set_mask) * ca in
               let limit = base + ca in
               t.clock <- t.clock + 1;
               let w = ref base in
               while !w < limit && Array.unsafe_get tags !w <> line do
                 incr w
               done;
               if !w < limit then begin
                 let w = !w in
                 Stats.record_access t.stats ~owner ~write ~hit:true;
                 Array.unsafe_set stamps w t.clock;
                 if write then Array.unsafe_set dirty w true
               end
               else begin
                 Stats.record_access t.stats ~owner ~write ~hit:false;
                 let victim = ref base and victim_stamp = ref max_int in
                 for w = base to limit - 1 do
                   if Array.unsafe_get stamps w < !victim_stamp then begin
                     victim_stamp := Array.unsafe_get stamps w;
                     victim := w
                   end
                 done;
                 let w = !victim in
                 if Array.unsafe_get tags w >= 0 && Array.unsafe_get dirty w
                 then begin
                   Stats.record_writeback t.stats
                     ~owner:(Array.unsafe_get owners w);
                   spill
                     ~owner:(Array.unsafe_get owners w)
                     ~line:(Array.unsafe_get tags w)
                 end;
                 Array.unsafe_set tags w line;
                 Array.unsafe_set owners w owner;
                 Array.unsafe_set dirty w write;
                 Array.unsafe_set stamps w t.clock;
                 fill ~owner ~line
               end
             end
           done
         done);
  t.now <- now0 + len

(* --- explicitly timed walks ---

   A deeper hierarchy level's input events are fills and spills, whose
   logical times are the *originating* program-event ordinals, not this
   cache's own event count — so the caller supplies a parallel [times]
   array (non-decreasing) instead of the implicit [now0 + i] clock.
   Used only by [Hierarchy] in timed mode; the final [now] is the last
   event's time. *)
let access_batch_timed t ~addrs ~metas ~times ~pos ~len =
  validate_batch ~addrs ~metas ~pos ~len;
  validate_times ~times ~pos ~len;
  let shift = t.line_shift in
  for i = pos to pos + len - 1 do
    t.now <- times.(i);
    let addr = Array.unsafe_get addrs i in
    let meta = Array.unsafe_get metas i in
    let owner = meta lsr meta_owner_shift in
    let write = meta land 1 = 1 in
    let first = addr lsr shift in
    let last = (addr + ((meta lsr 1) land max_size) - 1) lsr shift in
    for line = first to last do
      ignore (touch t ~owner ~write ~line)
    done
  done

let access_batch_feed_timed t ~addrs ~metas ~times ~pos ~len ~fill ~spill =
  validate_batch ~addrs ~metas ~pos ~len;
  validate_times ~times ~pos ~len;
  let shift = t.line_shift in
  for i = pos to pos + len - 1 do
    t.now <- times.(i);
    let addr = Array.unsafe_get addrs i in
    let meta = Array.unsafe_get metas i in
    let owner = meta lsr meta_owner_shift in
    let write = meta land 1 = 1 in
    let first = addr lsr shift in
    let last = (addr + ((meta lsr 1) land max_size) - 1) lsr shift in
    for line = first to last do
      ignore (touch_feed t ~owner ~write ~line ~fill ~spill)
    done
  done

let set_of_addr t addr =
  if addr < 0 then invalid_arg "Cache.set_of_addr: negative address";
  (addr lsr t.line_shift) land t.set_mask

(* End-of-run eviction of everything resident.  With residency
   attached, every surviving line's open phase is closed at the current
   event clock — the driver sets [now] to the run horizon first
   ([set_now]) so end-of-run exposure is counted up to the horizon and
   no further. *)
let flush t =
  Array.iteri
    (fun w tag ->
      if tag >= 0 then begin
        if t.dirty.(w) then Stats.record_writeback t.stats ~owner:t.owners.(w);
        (match t.res with
        | Some res ->
            Residency.record_interval res ~owner:t.owners.(w)
              ~dirty:t.dirty.(w) ~t0:t.res_start.(w) ~t1:t.now;
            Residency.record_flush res ~owner:t.owners.(w)
        | None -> ());
        t.tags.(w) <- -1;
        t.dirty.(w) <- false;
        t.stamps.(w) <- 0
      end)
    t.tags

(* [flush], but every dirty line's write-back is also handed to [spill]
   (slot order, i.e. set-major) so a next cache level can absorb it. *)
let flush_feed t ~spill =
  Array.iteri
    (fun w tag ->
      if tag >= 0 then begin
        if t.dirty.(w) then begin
          Stats.record_writeback t.stats ~owner:t.owners.(w);
          spill ~owner:t.owners.(w) ~line:tag
        end;
        (match t.res with
        | Some res ->
            Residency.record_interval res ~owner:t.owners.(w)
              ~dirty:t.dirty.(w) ~t0:t.res_start.(w) ~t1:t.now;
            Residency.record_flush res ~owner:t.owners.(w)
        | None -> ());
        t.tags.(w) <- -1;
        t.dirty.(w) <- false;
        t.stamps.(w) <- 0
      end)
    t.tags

let invalidate t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.dirty 0 (Array.length t.dirty) false;
  Array.fill t.stamps 0 (Array.length t.stamps) 0

let resident_lines t ~owner =
  let count = ref 0 in
  Array.iteri
    (fun w tag -> if tag >= 0 && t.owners.(w) = owner then incr count)
    t.tags;
  !count
