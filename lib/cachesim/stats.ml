type counters = {
  reads : int;
  writes : int;
  hits : int;
  misses : int;
  writebacks : int;
}

let zero = { reads = 0; writes = 0; hits = 0; misses = 0; writebacks = 0 }

type cell = {
  mutable reads : int;
  mutable writes : int;
  mutable hits : int;
  mutable misses : int;
  mutable writebacks : int;
}

type t = { mutable cells : cell array }

let fresh_cell () =
  { reads = 0; writes = 0; hits = 0; misses = 0; writebacks = 0 }

let create () = { cells = Array.init 8 (fun _ -> fresh_cell ()) }

let ensure t owner =
  if owner < 0 then invalid_arg "Stats: negative owner";
  let n = Array.length t.cells in
  if owner >= n then begin
    let n' = max (owner + 1) (2 * n) in
    let cells = Array.init n' (fun i -> if i < n then t.cells.(i) else fresh_cell ()) in
    t.cells <- cells
  end;
  t.cells.(owner)

let record_access t ~owner ~write ~hit =
  let c = ensure t owner in
  if write then c.writes <- c.writes + 1 else c.reads <- c.reads + 1;
  if hit then c.hits <- c.hits + 1 else c.misses <- c.misses + 1

let record_writeback t ~owner =
  let c = ensure t owner in
  c.writebacks <- c.writebacks + 1

let counters_of_cell (c : cell) : counters =
  {
    reads = c.reads;
    writes = c.writes;
    hits = c.hits;
    misses = c.misses;
    writebacks = c.writebacks;
  }

let owner_counters t owner =
  if owner < 0 || owner >= Array.length t.cells then zero
  else counters_of_cell t.cells.(owner)

let totals t =
  Array.fold_left
    (fun (acc : counters) (c : cell) ->
      {
        reads = acc.reads + c.reads;
        writes = acc.writes + c.writes;
        hits = acc.hits + c.hits;
        misses = acc.misses + c.misses;
        writebacks = acc.writebacks + c.writebacks;
      })
    zero t.cells

let main_memory_accesses t owner =
  let c = owner_counters t owner in
  c.misses + c.writebacks

let total_main_memory_accesses t =
  let c = totals t in
  c.misses + c.writebacks

let is_empty (c : cell) =
  c.reads = 0 && c.writes = 0 && c.hits = 0 && c.misses = 0 && c.writebacks = 0

let owners t =
  let acc = ref [] in
  Array.iteri (fun i c -> if not (is_empty c) then acc := i :: !acc) t.cells;
  List.rev !acc

(* --- immutable snapshots: what consumers outside the simulation loop
   read.  One coherent record per capture instead of piecemeal
   [owner_counters]/[totals] calls against a still-mutating [t]. --- *)

type snapshot = { per_owner : (int * counters) array; totals : counters }

let snapshot t =
  let per_owner =
    Array.of_list
      (List.map (fun o -> (o, counters_of_cell t.cells.(o))) (owners t))
  in
  let totals =
    Array.fold_left
      (fun (acc : counters) (_, (c : counters)) ->
        {
          reads = acc.reads + c.reads;
          writes = acc.writes + c.writes;
          hits = acc.hits + c.hits;
          misses = acc.misses + c.misses;
          writebacks = acc.writebacks + c.writebacks;
        })
      zero per_owner
  in
  { per_owner; totals }

module Snapshot = struct
  let totals s = s.totals

  let owners s = Array.to_list (Array.map fst s.per_owner)

  (* [per_owner] is sorted by owner id ([snapshot] builds it from
     [owners t], which is ascending), so lookup is a binary search —
     [Verify.rows_of_snapshot] calls this once per structure per row. *)
  let owner s owner =
    let a = s.per_owner in
    let lo = ref 0 and hi = ref (Array.length a - 1) in
    let found = ref zero in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let o, c = a.(mid) in
      if o = owner then begin
        found := c;
        lo := !hi + 1
      end
      else if o < owner then lo := mid + 1
      else hi := mid - 1
    done;
    !found

  let accesses (c : counters) = c.reads + c.writes

  let main_memory (c : counters) = c.misses + c.writebacks

  let owner_main_memory s o = main_memory (owner s o)

  let total_main_memory s = main_memory s.totals
end

(* Cross-domain aggregation: a parallel sweep runs one cache (and thus one
   stats record) per domain; [merge] folds a worker's counters into an
   accumulator after the domains join.  Addition is commutative, so the
   merged totals are independent of worker scheduling. *)
let merge ~into src =
  Array.iteri
    (fun owner (s : cell) ->
      if not (is_empty s) then begin
        let c = ensure into owner in
        c.reads <- c.reads + s.reads;
        c.writes <- c.writes + s.writes;
        c.hits <- c.hits + s.hits;
        c.misses <- c.misses + s.misses;
        c.writebacks <- c.writebacks + s.writebacks
      end)
    src.cells

let sum stats =
  let acc = create () in
  List.iter (fun s -> merge ~into:acc s) stats;
  acc

let reset t =
  Array.iter
    (fun (c : cell) ->
      c.reads <- 0;
      c.writes <- 0;
      c.hits <- 0;
      c.misses <- 0;
      c.writebacks <- 0)
    t.cells
