type t = {
  name : string;
  associativity : int;
  sets : int;
  line : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

(* The simulator indexes sets with [line land (sets - 1)] and splits
   references with a line-size shift, so non-power-of-two [sets] or [line]
   would silently alias sets and split lines inconsistently.  Reject them
   here, with the offending value in the message, so every construction
   site fails loudly instead. *)
let make ~name ~associativity ~sets ~line =
  if associativity <= 0 then
    invalid_arg
      (Printf.sprintf "Config.make: associativity must be positive (got %d)"
         associativity);
  if not (is_power_of_two sets) then
    invalid_arg
      (Printf.sprintf "Config.make: sets must be a positive power of two (got %d)"
         sets);
  if not (is_power_of_two line) then
    invalid_arg
      (Printf.sprintf "Config.make: line must be a positive power of two (got %d)"
         line);
  { name; associativity; sets; line }

let capacity t = t.associativity * t.sets * t.line
let blocks t = t.associativity * t.sets

let small_verification =
  make ~name:"Small (Verification)" ~associativity:4 ~sets:64 ~line:32

let large_verification =
  make ~name:"Large (Verification)" ~associativity:16 ~sets:4096 ~line:64

let profiling_16kb = make ~name:"16KB" ~associativity:2 ~sets:1024 ~line:8
let profiling_128kb = make ~name:"128KB" ~associativity:4 ~sets:2048 ~line:16
let profiling_768kb = make ~name:"768KB" ~associativity:6 ~sets:4096 ~line:32
let profiling_4mb = make ~name:"4MB" ~associativity:8 ~sets:8192 ~line:64

let profiling_set =
  [ profiling_16kb; profiling_128kb; profiling_768kb; profiling_4mb ]

let verification_set = [ small_verification; large_verification ]

(* Derive a hierarchy from a base (L1) configuration: each deeper level
   keeps the associativity and line size and has 8x the sets of the one
   above — a conventional capacity ratio, and sharing one line size is
   what lets the funnel forward whole lines and the set-sharded walk
   partition every level consistently.  Level 1 is [t] itself,
   unchanged, so a 1-level hierarchy is indistinguishable from the
   single cache it wraps (names included). *)
let hierarchy_of ~levels t =
  if levels < 1 || levels > 3 then
    invalid_arg
      (Printf.sprintf "Config.hierarchy_of: levels must be 1..3 (got %d)"
         levels);
  List.init levels (fun i ->
      if i = 0 then t
      else
        make
          ~name:(Printf.sprintf "%s/L%d" t.name (i + 1))
          ~associativity:t.associativity
          ~sets:(t.sets * (1 lsl (3 * i)))
          ~line:t.line)

let pp fmt t =
  Format.fprintf fmt "%s: %d-way, %d sets, %dB lines, %a" t.name
    t.associativity t.sets t.line Dvf_util.Units.pp_bytes (capacity t)
