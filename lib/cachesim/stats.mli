(** Per-data-structure cache statistics.

    Owners are small integer identifiers handed out by the trace layer's
    region registry; owner [0] is conventionally "anonymous".  Main-memory
    accesses for a structure are its LLC misses plus the writebacks of its
    dirty lines (the paper counts "last level cache misses and evictions"). *)

type t

type counters = {
  reads : int;       (** line-granular read lookups *)
  writes : int;      (** line-granular write lookups *)
  hits : int;
  misses : int;
  writebacks : int;  (** dirty evictions attributed to the line's owner *)
}

val create : unit -> t

val record_access : t -> owner:int -> write:bool -> hit:bool -> unit
val record_writeback : t -> owner:int -> unit

val owner_counters : t -> int -> counters
(** All-zero counters for owners never seen. *)

val totals : t -> counters

val main_memory_accesses : t -> int -> int
(** [misses + writebacks] for the owner. *)

val total_main_memory_accesses : t -> int

val owners : t -> int list
(** Owners with at least one recorded event, ascending. *)

type snapshot = {
  per_owner : (int * counters) array;  (** active owners, ascending *)
  totals : counters;
}
(** An immutable capture of a whole statistics record: per-owner counters
    and their totals in one coherent value.  This is the API consumers
    outside the simulation loop ({!Core.Verify}, the bench harness,
    telemetry) read; the mutable {!t} stays private to the cache being
    driven. *)

val snapshot : t -> snapshot
(** Capture the current state.  Later accesses to the underlying cache do
    not affect an already-taken snapshot. *)

module Snapshot : sig
  val totals : snapshot -> counters

  val owners : snapshot -> int list

  val owner : snapshot -> int -> counters
  (** All-zero counters for owners not in the snapshot. *)

  val accesses : counters -> int
  (** [reads + writes] — every line-granular lookup the cache served,
      i.e. lines touched.  The telemetry accesses/sec figures divide this
      by the simulation span. *)

  val main_memory : counters -> int
  (** [misses + writebacks]. *)

  val owner_main_memory : snapshot -> int -> int
  val total_main_memory : snapshot -> int
end

val merge : into:t -> t -> unit
(** [merge ~into src] adds every counter of [src] into [into].  Used to
    aggregate the per-domain caches of a parallel sweep after the worker
    domains join; addition commutes, so the result is schedule-independent. *)

val sum : t list -> t
(** Fresh statistics holding the element-wise sum of the inputs. *)

val reset : t -> unit
