(** Cache configurations (paper Table IV).

    A configuration describes a single (last-level) set-associative cache:
    associativity [CA], number of sets [NA], line length [CL] and the derived
    capacity [Cc = CA * NA * CL].  The paper restricts its analysis to the
    LLC, "because it has the largest impact on the number of main memory
    accesses within the cache hierarchy".

    Note: Table IV's stated capacities for its "1MB" and "8MB" profiling
    configurations do not match their own parameters (CA*NA*CL gives 768 KB
    and 4 MB respectively).  We keep the parameters verbatim — they are what
    the paper's results were actually produced with — but name the configs
    by their true capacities ("768KB", "4MB") so {!capacity} and the label
    always agree. *)

type t = private {
  name : string;
  associativity : int;  (** CA *)
  sets : int;           (** NA; must be a power of two *)
  line : int;           (** CL in bytes; must be a power of two *)
}

val make : name:string -> associativity:int -> sets:int -> line:int -> t
(** Validates positivity of all fields and power-of-two constraints on
    [sets] and [line]; raises [Invalid_argument] (naming the offending
    value) otherwise.  Associativity need not be a power of two (Table IV
    uses 6-way).  The constraints are load-bearing: {!Cache.create}
    derives a mask from [sets] and a shift from [line]. *)

val is_power_of_two : int -> bool
(** [true] iff the argument is a positive power of two. *)

val capacity : t -> int
(** [Cc = CA * NA * CL] in bytes. *)

val blocks : t -> int
(** Total number of cache blocks [CA * NA]. *)

val small_verification : t
(** Table IV "Small (Verification)": 4-way, 64 sets, 32 B lines, 8 KB. *)

val large_verification : t
(** Table IV "Large (Verification)": 16-way, 4096 sets, 64 B lines, 4 MB. *)

val profiling_16kb : t
(** Table IV "16KB (Profiling)": 2-way, 1024 sets, 8 B lines. *)

val profiling_128kb : t
(** Table IV "128KB (Profiling)": 4-way, 2048 sets, 16 B lines. *)

val profiling_768kb : t
(** Table IV "1MB (Profiling)": 6-way, 4096 sets, 32 B lines — actually
    768 KB, and named accordingly here. *)

val profiling_4mb : t
(** Table IV "8MB (Profiling)": 8-way, 8192 sets, 64 B lines — actually
    4 MB, and named accordingly here. *)

val profiling_set : t list
(** The four profiling configurations in Table IV order. *)

val verification_set : t list
(** Small and large verification configurations. *)

val hierarchy_of : levels:int -> t -> t list
(** Derive an L1..L[levels] hierarchy from a base configuration: level 1
    is the base itself (unchanged, name included); each deeper level
    keeps the associativity and line size and has 8x the sets of the
    level above, named ["<base>/L2"], ["<base>/L3"].  Sharing one line
    size is required by {!Hierarchy.create}.  Raises [Invalid_argument]
    unless [1 <= levels <= 3]. *)

val pp : Format.formatter -> t -> unit
