(* A write-back cache hierarchy: level 1 sees the program's reference
   stream; every deeper level sees only the traffic the level above
   emits — a read fill of the full line on each miss (write-allocate)
   and a write spill on each dirty eviction.  That traffic travels
   through the same packed-event funnel the single-cache path uses
   ([Cache.pack_access] words in columnar addr/meta buffers), so a
   level's input is indistinguishable from a program trace and each
   level keeps its own [Stats].

   Invariant (checked by the tests): after [flush], a level's accesses
   equal the previous level's misses plus its writebacks.

   With residency accumulators attached ([attach_residency]) the funnel
   also carries logical time: each queued fill/spill is stamped with the
   emitting cache's event clock ([q_times]), and deeper levels replay
   their input through the explicitly-timed walks so a line's clean and
   dirty phases at L2 are measured on the *program's* event axis, not
   L2's own (much sparser) traffic count. *)

type queue = {
  q_addrs : int array;
  q_metas : int array;
  (* Event-time stamps of the queued fills/spills (the emitting cache's
     clock at push time); only consulted when [timed]. *)
  q_times : int array;
  mutable q_len : int;
}

type t = {
  caches : Cache.t array;
  (* queues.(i) buffers the traffic flowing from level i+1 to level i+2;
     length = depth - 1. *)
  queues : queue array;
  line : int;
  line_shift : int;
  funnel_events : int;
  (* 1-element scratch for the single-event entry point. *)
  scratch_addr : int array;
  scratch_meta : int array;
  mutable timed : bool;
}

let log2 n =
  let rec loop acc n = if n <= 1 then acc else loop (acc + 1) (n lsr 1) in
  loop 0 n

let create ?(funnel_events = 4096) configs =
  if configs = [] then invalid_arg "Hierarchy.create: no levels";
  if funnel_events <= 0 then
    invalid_arg
      (Printf.sprintf "Hierarchy.create: funnel_events must be positive (got %d)"
         funnel_events);
  let line = (List.hd configs).Config.line in
  List.iteri
    (fun i (c : Config.t) ->
      if c.line <> line then
        invalid_arg
          (Printf.sprintf
             "Hierarchy.create: level %d line size %d differs from level 1's \
              %d (all levels must share one line size)"
             (i + 1) c.line line))
    configs;
  let caches = Array.of_list (List.map Cache.create configs) in
  let queues =
    Array.init
      (Array.length caches - 1)
      (fun _ ->
        {
          q_addrs = Array.make funnel_events 0;
          q_metas = Array.make funnel_events 0;
          q_times = Array.make funnel_events 0;
          q_len = 0;
        })
  in
  {
    caches;
    queues;
    line;
    line_shift = log2 line;
    funnel_events;
    scratch_addr = [| 0 |];
    scratch_meta = [| 0 |];
    timed = false;
  }

let depth t = Array.length t.caches
let level_cache t i =
  if i < 0 || i >= depth t then
    invalid_arg
      (Printf.sprintf "Hierarchy.level_cache: level %d out of range (0..%d)" i
         (depth t - 1))
  else t.caches.(i)

let configs t = Array.to_list (Array.map Cache.config t.caches)

let attach_residency t residencies =
  if Array.length residencies <> depth t then
    invalid_arg
      (Printf.sprintf
         "Hierarchy.attach_residency: %d accumulators for %d levels"
         (Array.length residencies) (depth t));
  Array.iteri
    (fun i res -> Cache.attach_residency t.caches.(i) res)
    residencies;
  t.timed <- true

let set_now t time = Array.iter (fun c -> Cache.set_now c time) t.caches

(* The shard partition key is the line number, shared by every level
   (one line size); for the per-set independence argument to hold at
   every level, the effective shard count must divide the set count of
   the *smallest* level. *)
let max_shards t =
  Array.fold_left
    (fun acc c -> min acc (Cache.config c).Config.sets)
    max_int t.caches

(* [feed_entry] drives level 1 over a packed program batch; misses and
   dirty evictions are pushed (as full-line read fills / write spills)
   into the queue toward level 2, which is drained whenever it fills and
   recursively fed onward through [feed_inner].  Inner levels always run
   unsharded: the entry-level filter already restricted the stream to
   one shard's lines, and fills/spills stay on those same lines, so
   re-filtering would be redundant — and wrong if a deeper level had
   fewer sets than the effective shard count.  In timed mode the inner
   walks take the queue's stamp column so deeper levels advance on the
   program's event axis. *)
let rec feed_entry t ~addrs ~metas ~pos ~len ~shards ~shard =
  let cache = t.caches.(0) in
  if Array.length t.caches = 1 then
    Cache.access_batch_sharded cache ~addrs ~metas ~pos ~len ~shards ~shard
  else begin
    let fill ~owner ~line = push t ~level:0 ~owner ~line ~write:false in
    let spill ~owner ~line = push t ~level:0 ~owner ~line ~write:true in
    Cache.access_batch_feed cache ~addrs ~metas ~pos ~len ~shards ~shard ~fill
      ~spill;
    flush_queue t ~level:0
  end

and feed_inner t ~level ~addrs ~metas ~times ~pos ~len =
  let cache = t.caches.(level) in
  if level = Array.length t.caches - 1 then begin
    if t.timed then Cache.access_batch_timed cache ~addrs ~metas ~times ~pos ~len
    else
      Cache.access_batch_sharded cache ~addrs ~metas ~pos ~len ~shards:1
        ~shard:0
  end
  else begin
    let fill ~owner ~line = push t ~level ~owner ~line ~write:false in
    let spill ~owner ~line = push t ~level ~owner ~line ~write:true in
    if t.timed then
      Cache.access_batch_feed_timed cache ~addrs ~metas ~times ~pos ~len ~fill
        ~spill
    else
      Cache.access_batch_feed cache ~addrs ~metas ~pos ~len ~shards:1 ~shard:0
        ~fill ~spill;
    flush_queue t ~level
  end

and push t ~level ~owner ~line ~write =
  let q = t.queues.(level) in
  if q.q_len = t.funnel_events then flush_queue t ~level;
  q.q_addrs.(q.q_len) <- line lsl t.line_shift;
  q.q_metas.(q.q_len) <- Cache.pack_access ~owner ~write ~size:t.line;
  q.q_times.(q.q_len) <- Cache.now t.caches.(level);
  q.q_len <- q.q_len + 1

and flush_queue t ~level =
  let q = t.queues.(level) in
  let len = q.q_len in
  if len > 0 then begin
    (* Reset before feeding: the next level's own spills may re-enter
       [push] for this queue while we are still walking it. *)
    q.q_len <- 0;
    feed_inner t ~level:(level + 1) ~addrs:q.q_addrs ~metas:q.q_metas
      ~times:q.q_times ~pos:0 ~len
  end

let access_batch_sharded t ~addrs ~metas ~pos ~len ~shards ~shard =
  if shards <= 0 || shards land (shards - 1) <> 0 then
    invalid_arg
      (Printf.sprintf
         "Hierarchy: shards must be a positive power of two (got %d)" shards);
  if shard < 0 || shard >= shards then
    invalid_arg
      (Printf.sprintf "Hierarchy: shard %d out of range (0..%d)" shard
         (shards - 1));
  let eff = min shards (max_shards t) in
  (* Shards beyond the effective count own no sets at any level. *)
  if shard < eff then feed_entry t ~addrs ~metas ~pos ~len ~shards:eff ~shard

let access_batch t ~addrs ~metas ~pos ~len =
  access_batch_sharded t ~addrs ~metas ~pos ~len ~shards:1 ~shard:0

let access t ~owner ~write ~addr ~size =
  t.scratch_addr.(0) <- addr;
  t.scratch_meta.(0) <- Cache.pack_access ~owner ~write ~size;
  access_batch t ~addrs:t.scratch_addr ~metas:t.scratch_meta ~pos:0 ~len:1

(* Drain level by level: level i's flush spills feed level i+1 before
   level i+1 itself flushes, so end-of-run dirty lines cascade down the
   hierarchy exactly like mid-run evictions do.

   In timed mode the driver pins the clock to the run horizon first
   ([set_now]); draining a queue replays *mid-run* stamps into the next
   level and leaves that level's clock at the last stamp, so each
   level's clock is re-pinned to the horizon immediately before its own
   flush — otherwise a level whose last input predates the horizon
   would close its surviving lines' phases early and undercount
   end-of-run exposure. *)
let flush t =
  let last = Array.length t.caches - 1 in
  let horizon_now = Cache.now t.caches.(0) in
  for level = 0 to last - 1 do
    flush_queue t ~level;
    if t.timed then Cache.set_now t.caches.(level) horizon_now;
    Cache.flush_feed t.caches.(level) ~spill:(fun ~owner ~line ->
        push t ~level ~owner ~line ~write:true);
    flush_queue t ~level
  done;
  if t.timed then Cache.set_now t.caches.(last) horizon_now;
  Cache.flush t.caches.(last)

let invalidate t =
  Array.iter Cache.invalidate t.caches;
  Array.iter (fun q -> q.q_len <- 0) t.queues
