(* Per-owner residency-time accounting, the time axis the access-count
   [Stats] lack.  The clock is the *event ordinal* of the reference
   stream driving the cache (tapes give a total order), so every
   quantity here is an exact integer: a closed interval [t0, t1)
   contributes [t1 - t0] line-events to its owner's clean or dirty
   integral, and its overlap with each fixed-width window of the run to
   that window's histogram bin.  Integer addition commutes, so shard
   replicas merged with [merge]/[sum] reproduce the serial accumulator
   bit for bit — the same contract [Stats] gives the sharded walks. *)

type cell = {
  mutable clean_time : int;
  mutable dirty_time : int;
  mutable fills : int;
  mutable evictions : int;
  mutable flushes : int;
  clean_bins : int array;
  dirty_bins : int array;
}

type t = {
  bins : int;
  horizon : int;
  bin_width : int;
  mutable cells : cell array;
}

let default_bins = 20

let create ?(bins = default_bins) ~horizon () =
  if bins <= 0 then
    invalid_arg
      (Printf.sprintf "Residency.create: bins must be positive (got %d)" bins);
  if horizon < 0 then
    invalid_arg
      (Printf.sprintf "Residency.create: negative horizon %d" horizon);
  {
    bins;
    horizon;
    (* Every event ordinal in [0, horizon) must land in a bin, so the
       width rounds up; the last bin may be partial. *)
    bin_width = max 1 ((horizon + bins - 1) / bins);
    cells = [||];
  }

let bins t = t.bins
let horizon t = t.horizon
let bin_width t = t.bin_width

let fresh_cell bins =
  {
    clean_time = 0;
    dirty_time = 0;
    fills = 0;
    evictions = 0;
    flushes = 0;
    clean_bins = Array.make bins 0;
    dirty_bins = Array.make bins 0;
  }

let ensure t owner =
  if owner < 0 then invalid_arg "Residency: negative owner";
  let n = Array.length t.cells in
  if owner >= n then begin
    let n' = max (owner + 1) (max 8 (2 * n)) in
    t.cells <-
      Array.init n' (fun i -> if i < n then t.cells.(i) else fresh_cell t.bins)
  end;
  t.cells.(owner)

let record_fill t ~owner =
  let c = ensure t owner in
  c.fills <- c.fills + 1

let record_eviction t ~owner =
  let c = ensure t owner in
  c.evictions <- c.evictions + 1

let record_flush t ~owner =
  let c = ensure t owner in
  c.flushes <- c.flushes + 1

(* One closed residency phase of one line: [t0, t1) spent entirely clean
   or entirely dirty.  Clamped to [0, horizon] so end-of-run flush
   closures (and fills pushed at the horizon by a hierarchy flush
   cascade) contribute exactly the in-run exposure and nothing more. *)
let record_interval t ~owner ~dirty ~t0 ~t1 =
  if t1 < t0 then
    invalid_arg
      (Printf.sprintf "Residency.record_interval: t1 %d < t0 %d" t1 t0);
  let t0 = if t0 < 0 then 0 else t0 in
  let t1 = if t1 > t.horizon then t.horizon else t1 in
  if t1 > t0 then begin
    let c = ensure t owner in
    let span = t1 - t0 in
    let hist = if dirty then c.dirty_bins else c.clean_bins in
    if dirty then c.dirty_time <- c.dirty_time + span
    else c.clean_time <- c.clean_time + span;
    let w = t.bin_width in
    let b0 = t0 / w and b1 = (t1 - 1) / w in
    if b0 = b1 then hist.(b0) <- hist.(b0) + span
    else
      for b = b0 to b1 do
        let lo = max t0 (b * w) and hi = min t1 ((b + 1) * w) in
        hist.(b) <- hist.(b) + (hi - lo)
      done
  end

let is_empty c =
  c.clean_time = 0 && c.dirty_time = 0 && c.fills = 0 && c.evictions = 0
  && c.flushes = 0

let owners t =
  let acc = ref [] in
  Array.iteri (fun i c -> if not (is_empty c) then acc := i :: !acc) t.cells;
  List.rev !acc

(* --- immutable snapshots, mirroring [Stats.snapshot] --- *)

type counters = {
  clean_time : int;
  dirty_time : int;
  fills : int;
  evictions : int;
  flushes : int;
  clean_bins : int array;
  dirty_bins : int array;
}

let zero_counters bins =
  {
    clean_time = 0;
    dirty_time = 0;
    fills = 0;
    evictions = 0;
    flushes = 0;
    clean_bins = Array.make bins 0;
    dirty_bins = Array.make bins 0;
  }

let counters_of_cell (c : cell) =
  {
    clean_time = c.clean_time;
    dirty_time = c.dirty_time;
    fills = c.fills;
    evictions = c.evictions;
    flushes = c.flushes;
    clean_bins = Array.copy c.clean_bins;
    dirty_bins = Array.copy c.dirty_bins;
  }

type snapshot = {
  s_bins : int;
  s_horizon : int;
  s_bin_width : int;
  per_owner : (int * counters) array;
  totals : counters;
}

let snapshot t =
  let per_owner =
    Array.of_list
      (List.map (fun o -> (o, counters_of_cell t.cells.(o))) (owners t))
  in
  let totals =
    Array.fold_left
      (fun acc (_, c) ->
        Array.iteri
          (fun b v -> acc.clean_bins.(b) <- acc.clean_bins.(b) + v)
          c.clean_bins;
        Array.iteri
          (fun b v -> acc.dirty_bins.(b) <- acc.dirty_bins.(b) + v)
          c.dirty_bins;
        {
          acc with
          clean_time = acc.clean_time + c.clean_time;
          dirty_time = acc.dirty_time + c.dirty_time;
          fills = acc.fills + c.fills;
          evictions = acc.evictions + c.evictions;
          flushes = acc.flushes + c.flushes;
        })
      (zero_counters t.bins) per_owner
  in
  {
    s_bins = t.bins;
    s_horizon = t.horizon;
    s_bin_width = t.bin_width;
    per_owner;
    totals;
  }

module Snapshot = struct
  let totals s = s.totals
  let owners s = Array.to_list (Array.map fst s.per_owner)
  let bins s = s.s_bins
  let horizon s = s.s_horizon
  let bin_width s = s.s_bin_width

  let owner s o =
    let a = s.per_owner in
    let lo = ref 0 and hi = ref (Array.length a - 1) in
    let found = ref None in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let o', c = a.(mid) in
      if o' = o then begin
        found := Some c;
        lo := !hi + 1
      end
      else if o' < o then lo := mid + 1
      else hi := mid - 1
    done;
    match !found with Some c -> c | None -> zero_counters s.s_bins

  let resident_time (c : counters) = c.clean_time + c.dirty_time

  let resident_bins (c : counters) =
    Array.init (Array.length c.clean_bins) (fun b ->
        c.clean_bins.(b) + c.dirty_bins.(b))

  let dirty_fraction (c : counters) =
    let total = resident_time c in
    if total = 0 then 0.0 else float_of_int c.dirty_time /. float_of_int total

  let mean_resident_lines s (c : counters) =
    if s.s_horizon = 0 then 0.0
    else float_of_int (resident_time c) /. float_of_int s.s_horizon
end

(* Cross-shard aggregation: integer addition only, so the merged
   accumulator is independent of merge order — required for the
   sharded walk's bit-identity guarantee. *)
let merge ~into src =
  if into.bins <> src.bins || into.horizon <> src.horizon then
    invalid_arg
      (Printf.sprintf
         "Residency.merge: geometry mismatch (bins %d/%d, horizon %d/%d)"
         into.bins src.bins into.horizon src.horizon);
  Array.iteri
    (fun owner (c : cell) ->
      if not (is_empty c) then begin
        let acc = ensure into owner in
        acc.clean_time <- acc.clean_time + c.clean_time;
        acc.dirty_time <- acc.dirty_time + c.dirty_time;
        acc.fills <- acc.fills + c.fills;
        acc.evictions <- acc.evictions + c.evictions;
        acc.flushes <- acc.flushes + c.flushes;
        Array.iteri
          (fun b v -> acc.clean_bins.(b) <- acc.clean_bins.(b) + v)
          c.clean_bins;
        Array.iteri
          (fun b v -> acc.dirty_bins.(b) <- acc.dirty_bins.(b) + v)
          c.dirty_bins
      end)
    src.cells

let sum = function
  | [] -> invalid_arg "Residency.sum: empty list"
  | r :: _ as rs ->
      let acc = create ~bins:r.bins ~horizon:r.horizon () in
      List.iter (fun s -> merge ~into:acc s) rs;
      acc

let reset t =
  Array.iter
    (fun (c : cell) ->
      c.clean_time <- 0;
      c.dirty_time <- 0;
      c.fills <- 0;
      c.evictions <- 0;
      c.flushes <- 0;
      Array.fill c.clean_bins 0 (Array.length c.clean_bins) 0;
      Array.fill c.dirty_bins 0 (Array.length c.dirty_bins) 0)
    t.cells
