(** Per-owner clean/dirty residency-time accounting.

    The access-count {!Stats} answer "how often is a structure's data
    touched"; this accumulator answers "how {e long} does it sit in the
    cache, and in what state" — the quantity Jaulmes et al. ("Memory
    Vulnerability: A Case for Delaying Error Reporting") argue
    vulnerability is actually proportional to.  The clock is the event
    ordinal of the reference stream (tapes give a total order), so all
    integrals are exact integers: a line resident over [t0, t1)
    contributes [t1 - t0] line-events to its owner, split into clean
    phases (recoverable from memory) and dirty phases (the sole copy —
    the unrecoverable exposure window), plus a bounded
    vulnerability-vs-time histogram of [bins] fixed-width windows over
    [0, horizon).

    Everything is integer addition, so {!merge}/{!sum} over shard or
    domain replicas reproduce the serial accumulator bit for bit — the
    same contract {!Stats} gives the sharded walks. *)

type t

val default_bins : int
(** 20. *)

val create : ?bins:int -> horizon:int -> unit -> t
(** [horizon] is the run length in events (intervals are clamped to
    [0, horizon]); [bins] (default {!default_bins}) the histogram width.
    Raises [Invalid_argument] on [bins <= 0] or a negative horizon. *)

val bins : t -> int
val horizon : t -> int

val bin_width : t -> int
(** [max 1 (ceil (horizon / bins))]; the last bin may be partial. *)

val record_interval : t -> owner:int -> dirty:bool -> t0:int -> t1:int -> unit
(** Close one residency phase: line owned by [owner] sat entirely clean
    or entirely dirty over [t0, t1) (event ordinals; clamped to
    [0, horizon], empty after clamping is a no-op).  Raises
    [Invalid_argument] if [t1 < t0] or [owner < 0]. *)

val record_fill : t -> owner:int -> unit
val record_eviction : t -> owner:int -> unit
val record_flush : t -> owner:int -> unit

val owners : t -> int list
(** Owners with any recorded activity, ascending. *)

type counters = {
  clean_time : int;   (** line-events resident and clean *)
  dirty_time : int;   (** line-events resident and dirty *)
  fills : int;
  evictions : int;
  flushes : int;      (** lines closed by an end-of-run flush *)
  clean_bins : int array;
  dirty_bins : int array;
}

type snapshot = {
  s_bins : int;
  s_horizon : int;
  s_bin_width : int;
  per_owner : (int * counters) array;  (** active owners, ascending *)
  totals : counters;
}

val snapshot : t -> snapshot
(** Immutable capture (bin arrays are copied). *)

module Snapshot : sig
  val totals : snapshot -> counters
  val owners : snapshot -> int list
  val bins : snapshot -> int
  val horizon : snapshot -> int
  val bin_width : snapshot -> int

  val owner : snapshot -> int -> counters
  (** All-zero counters for owners not in the snapshot. *)

  val resident_time : counters -> int
  (** [clean_time + dirty_time]. *)

  val resident_bins : counters -> int array
  (** Element-wise [clean_bins + dirty_bins]. *)

  val dirty_fraction : counters -> float
  (** [dirty_time / resident_time], 0 when nothing was resident. *)

  val mean_resident_lines : snapshot -> counters -> float
  (** [resident_time / horizon] — the owner's average cached footprint
      in lines over the whole run. *)
end

val merge : into:t -> t -> unit
(** Add every integral and histogram of the source into [into].  Raises
    [Invalid_argument] on mismatched bins/horizon. *)

val sum : t list -> t
(** Fresh accumulator holding the element-wise sum; all inputs must
    share bins and horizon.  Raises [Invalid_argument] on an empty
    list. *)

val reset : t -> unit
