(** Multi-level write-back cache hierarchy.

    The paper restricts its analysis to a single (last-level) cache; a
    hierarchy generalizes that in the direction Thales' per-hardware-level
    vulnerability formulation points: level 1 sees the program's reference
    stream, and each deeper level sees only the traffic the level above
    emits — a read fill of the full line on every miss (write-allocate)
    and a write spill on every dirty eviction (write-back).  Inter-level
    traffic travels through the same packed-event funnel
    ({!Cache.pack_access} words in columnar buffers) the single-cache
    replay path uses, and every level keeps its own {!Stats}, so DVF can
    be evaluated per level.

    Invariant (after {!flush}): a level's accesses equal the previous
    level's misses plus its writebacks.

    A 1-level hierarchy behaves bit-identically to the single
    {!Cache.t} it wraps. *)

type t

val create : ?funnel_events:int -> Config.t list -> t
(** [create configs] builds a hierarchy with [List.nth configs 0] as L1.
    All levels must share one line size — fills and spills forward whole
    lines, and the set-sharded walk partitions every level by the same
    line-number bits.  [funnel_events] (default 4096) sizes the
    inter-level buffers.  Raises [Invalid_argument] on an empty list,
    mismatched line sizes, or a non-positive [funnel_events]. *)

val depth : t -> int

val level_cache : t -> int -> Cache.t
(** The cache at 0-based level [i] (0 = L1).  Use it to read per-level
    {!Stats}.  Raises [Invalid_argument] out of range. *)

val configs : t -> Config.t list

val attach_residency : t -> Residency.t array -> unit
(** Attach one {!Residency.t} per level (array length must equal
    {!depth}) and switch the funnel to timed mode: every queued fill or
    spill is stamped with the emitting cache's event clock, and deeper
    levels replay their input through the explicitly timed walks — so a
    line's clean/dirty phases at every level are measured on the
    program's event axis.  Attach before the first access.  Raises
    [Invalid_argument] on a length mismatch. *)

val set_now : t -> int -> unit
(** Pin every level's event clock (see {!Cache.set_now}) — the replay
    driver sets the run horizon before {!flush}. *)

val max_shards : t -> int
(** Largest usable shard count: the minimum set count over all levels.
    {!access_batch_sharded} clamps its [shards] argument to this. *)

val access : t -> owner:int -> write:bool -> addr:int -> size:int -> unit
(** Single-reference entry point (mirrors {!Cache.access}). *)

val access_batch :
  t -> addrs:int array -> metas:int array -> pos:int -> len:int -> unit
(** Packed-batch entry point (mirrors {!Cache.access_batch}). *)

val access_batch_sharded :
  t ->
  addrs:int array ->
  metas:int array ->
  pos:int ->
  len:int ->
  shards:int ->
  shard:int ->
  unit
(** Walk only the lines owned by [shard] of [shards] — the partition key
    is the line number, shared by every level, so per-set independence
    holds hierarchy-wide and running all shards over the same batch
    reproduces the serial statistics at every level bit for bit.
    [shards] is clamped to {!max_shards}; shards beyond the clamp are
    no-ops.  The filter applies at level 1 only: deeper levels see only
    fills/spills of already-filtered lines. *)

val flush : t -> unit
(** Drain the hierarchy top-down: level [i]'s flush spills feed level
    [i+1] before level [i+1] flushes, so end-of-run dirty lines cascade
    like mid-run evictions.  After this the inter-level invariant above
    holds exactly. *)

val invalidate : t -> unit
(** Drop all contents at every level without recording writebacks. *)
