(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Tables II, IV-VII; Figures 4-7), runs the ablation studies
   DESIGN.md calls out, exercises the Aspen DSL end to end, and times the
   analytical models against the cache simulator with bechamel (the
   paper's "evaluation cost at the granularity of seconds" claim).

   Usage: dune exec bench/main.exe
     [-- section ... [-j N] [--no-tape] [--tape-store DIR]]
   where section is one of: tables fig4 fig5 fig6 fig7 sweep tape ablation
   sparse component inject chaos aspen speed serve.
   With no sections every section runs.  [-j N] (or [--jobs N]) sets the
   domain count for the parallel sections (fig4, fig6, sweep, inject,
   chaos); the default
   is Domain.recommended_domain_count, and [-j 1] forces the serial
   path.  [--no-tape] disables capture-once/replay-many tape reuse in
   fig4 and sweep (per-geometry retrace, the performance baseline); the
   [tape] section measures both side by side.  [--tape-store DIR] routes
   every capture in fig4, sweep and serve through a persistent
   content-addressed tape store, so a warm store benchmarks the
   replay-from-disk path and the snapshot records store hit/miss/byte
   counters.

   Every run also writes BENCH_dvf.json — a machine-readable performance
   snapshot (command, cache geometry, job count, wall-clock, trace-replay
   events/sec, and the full telemetry document) — so CI can archive
   per-commit performance without parsing the human-readable tables. *)

let section_header title =
  Printf.printf "\n%s\n%s\n\n" title (String.make (String.length title) '=')

(* --- Tables II, IV, V, VI, VII --- *)

let run_tables () =
  section_header "Static tables";
  Dvf_util.Table.print (Core.Experiments.table2 ());
  Dvf_util.Table.print (Core.Experiments.table4 ());
  Dvf_util.Table.print (Core.Experiments.table5 ());
  Dvf_util.Table.print (Core.Experiments.table6 ());
  Dvf_util.Table.print (Core.Experiments.table7 ())

(* --- Fig. 4: model verification --- *)

let run_fig4 ~jobs ~telemetry ~tape ~store () =
  section_header "Fig. 4 - Model verification (trace-driven simulation vs CGPMAC)";
  let strategy =
    if tape then Core.Verify.Replay else Core.Verify.Retrace
  in
  (* The store only makes sense on a tape-reusing strategy: retrace never
     captures a tape, so it has nothing to persist or load. *)
  let store = if tape then store else None in
  let rows = Core.Verify.run_all ~jobs ~telemetry ?store ~strategy () in
  Dvf_util.Table.print (Core.Verify.to_table rows);
  let summary =
    Dvf_util.Table.create ~title:"Aggregate (total-traffic) error per kernel"
      [
        ("kernel", Dvf_util.Table.Left); ("cache", Dvf_util.Table.Left);
        ("error %", Dvf_util.Table.Right); ("<= 15%?", Dvf_util.Table.Left);
      ]
  in
  List.iter
    (fun (w : Core.Workload.t) ->
      List.iter
        (fun cache ->
          let err =
            100.0 *. Core.Verify.workload_error ~rows w.Core.Workload.name cache
          in
          Dvf_util.Table.add_row summary
            [
              w.Core.Workload.name; cache.Cachesim.Config.name;
              Printf.sprintf "%.1f" err;
              (if err <= 15.0 then "yes" else "NO");
            ])
        Cachesim.Config.verification_set)
    (Core.Workloads.all ());
  Dvf_util.Table.print summary

(* --- Fig. 5: DVF profiling --- *)

let run_fig5 () =
  section_header "Fig. 5 - DVF profiling (Table VI sizes, four caches)";
  let rows = Core.Profile.run_all () in
  Dvf_util.Table.print (Core.Profile.to_table rows);
  (* The qualitative observations the paper draws from Fig. 5. *)
  let dvf workload structure cache =
    let r =
      List.find
        (fun (r : Core.Profile.row) ->
          r.Core.Profile.workload = workload
          && r.Core.Profile.structure = structure
          && r.Core.Profile.cache.Cachesim.Config.name = cache)
        rows
    in
    r.Core.Profile.dvf
  in
  Printf.printf "Observations (paper SS IV-B):\n";
  Printf.printf "  VM: DVF(A) / DVF(B) at 4MB = %.1f (A's stride makes it dominant)\n"
    (dvf "VM" "A" "4MB" /. dvf "VM" "B" "4MB");
  Printf.printf "  CG vs FT: DVF_a ratio at 4MB = %.0fx (working set + time)\n"
    (dvf "CG" "CG" "4MB" /. dvf "FT" "FT" "4MB");
  Printf.printf
    "  MC vs NB: DVF_a ratio at 16KB = %.0fx (more lookups -> more accesses)\n"
    (dvf "MC" "MC" "16KB" /. dvf "NB" "NB" "16KB");
  Printf.printf "  FT cliff: DVF_a(16KB) / DVF_a(128KB) = %.0fx (sudden jump)\n"
    (dvf "FT" "FT" "16KB" /. dvf "FT" "FT" "128KB");
  Printf.printf
    "  VM streaming stays flat: DVF_a(16KB) / DVF_a(4MB) = %.1fx (gradual)\n"
    (dvf "VM" "VM" "16KB" /. dvf "VM" "VM" "4MB")

(* --- Fig. 6: CG vs PCG --- *)

let run_fig6 ~jobs ~telemetry () =
  section_header "Fig. 6 - Algorithm optimization (CG vs PCG)";
  let rows = Core.Experiments.fig6 ~jobs ~telemetry () in
  Dvf_util.Table.print (Core.Experiments.fig6_table rows);
  let crossover =
    List.find_opt
      (fun (r : Core.Experiments.fig6_row) ->
        r.Core.Experiments.pcg_dvf < r.Core.Experiments.cg_dvf)
      rows
  in
  (match crossover with
  | Some r ->
      Printf.printf
        "PCG becomes less vulnerable than CG at n = %d (paper: crossover \
         between small and large problem sizes)\n"
        r.Core.Experiments.n
  | None -> Printf.printf "no crossover observed\n")

(* --- Fig. 7: ECC protection --- *)

let run_fig7 () =
  section_header "Fig. 7 - Hardware protection (ECC) on VM";
  let rows = Core.Experiments.fig7 ~steps:30 () in
  Dvf_util.Table.print (Core.Experiments.fig7_table rows);
  let secded_opt, chipkill_opt = Core.Experiments.fig7_optimum rows in
  Printf.printf
    "DVF minimized at %.0f%% (SECDED) / %.0f%% (chipkill) degradation \
     (paper: about 5%%)\n"
    (100.0 *. secded_opt) (100.0 *. chipkill_opt)

(* --- Ablations --- *)

let run_ablation () =
  section_header "Ablation studies";
  let cache = Cachesim.Config.small_verification in

  (* (a) Eq. 8 allocation model: Bernoulli (paper-literal) vs Uniform
     (contiguous layout) against the LRU simulator on a fitting mix. *)
  let simulate_reuse ~fa ~fb =
    let line = cache.Cachesim.Config.line in
    let c = Cachesim.Cache.create cache in
    for b = 0 to fa - 1 do
      Cachesim.Cache.access c ~owner:1 ~write:false ~addr:(b * line) ~size:1
    done;
    for b = 0 to fb - 1 do
      Cachesim.Cache.access c ~owner:2 ~write:false
        ~addr:((1 lsl 24) + (b * line)) ~size:1
    done;
    let misses () =
      let snap = Cachesim.Stats.snapshot (Cachesim.Cache.stats c) in
      (Cachesim.Stats.Snapshot.owner snap 1).Cachesim.Stats.misses
    in
    let before = misses () in
    for b = 0 to fa - 1 do
      Cachesim.Cache.access c ~owner:1 ~write:false ~addr:(b * line) ~size:1
    done;
    misses () - before
  in
  let t =
    Dvf_util.Table.create
      ~title:"(a) Reuse-model allocation: Bernoulli (Eq. 8 literal) vs Uniform"
      [
        ("F_A", Dvf_util.Table.Right); ("F_B", Dvf_util.Table.Right);
        ("LRU sim", Dvf_util.Table.Right); ("bernoulli", Dvf_util.Table.Right);
        ("uniform", Dvf_util.Table.Right);
      ]
  in
  List.iter
    (fun (fa, fb) ->
      let sim = simulate_reuse ~fa ~fb in
      let model alloc =
        Access_patterns.Reuse.misses_per_reuse ~alloc ~cache ~fa ~fb
          ~scenario:`Lru_protected ()
      in
      Dvf_util.Table.add_row t
        [
          string_of_int fa; string_of_int fb; string_of_int sim;
          Printf.sprintf "%.0f" (model `Bernoulli);
          Printf.sprintf "%.0f" (model `Uniform);
        ])
    [ (100, 50); (128, 128); (64, 256); (256, 256) ];
  Dvf_util.Table.print t;

  (* (b) Template distance: stack (LRU-faithful) vs raw (paper-literal)
     on the FT reference stream. *)
  let p = Kernels.Fft.make_params 2048 in
  let spec_of distance =
    let base = Kernels.Fft.spec p in
    let s = List.hd base.Access_patterns.App_spec.structures in
    match s.Access_patterns.App_spec.pattern with
    | Some (Access_patterns.Pattern.Templated tpl) ->
        Access_patterns.Template.main_memory_accesses ~cache
          { tpl with Access_patterns.Template.distance }
    | _ -> assert false
  in
  Printf.printf
    "(b) FT 2^11 template on the 8KB cache: stack distance %.0f accesses, \
     raw distance %.0f\n"
    (spec_of `Stack) (spec_of `Raw);

  (* (c) Random-model contiguity: the paper's Belm = XE upper bound vs the
     run-length-aware estimate, against the MC simulation. *)
  let mc = Kernels.Monte_carlo.verification in
  let registry = Memtrace.Region.create () in
  let recorder = Memtrace.Recorder.create () in
  let c = Cachesim.Cache.create cache in
  ignore (Memtrace.Recorder.add_sink recorder (Memtrace.Recorder.cache_sink c));
  ignore (Kernels.Monte_carlo.run registry recorder mc);
  Cachesim.Cache.flush c;
  let sim_total =
    Cachesim.Stats.Snapshot.total_main_memory
      (Cachesim.Stats.snapshot (Cachesim.Cache.stats c))
  in
  let model_total run_length_aware =
    let spec = Kernels.Monte_carlo.spec mc in
    let adjust (s : Access_patterns.App_spec.structure) =
      match s.Access_patterns.App_spec.pattern with
      | Some (Access_patterns.Pattern.Random r) when not run_length_aware ->
          {
            s with
            Access_patterns.App_spec.pattern =
              Some
                (Access_patterns.Pattern.Random
                   { r with Access_patterns.Random_access.run_length = 1 });
          }
      | _ -> s
    in
    let spec =
      {
        spec with
        Access_patterns.App_spec.structures =
          List.map adjust spec.Access_patterns.App_spec.structures;
      }
    in
    List.fold_left
      (fun acc (_, v) -> acc +. v)
      0.0
      (Access_patterns.App_spec.main_memory_accesses ~cache spec)
  in
  Printf.printf
    "(c) MC on the 8KB cache: simulated %d; paper-literal model %.0f; \
     contiguity-aware model %.0f\n"
    sim_total (model_total false) (model_total true);

  (* (d) PCG preconditioner storage: vector vs dense matrix at n = 800. *)
  let dvf_of preconditioner =
    let params =
      Kernels.Pcg.make_params ~max_iterations:5000 ~tolerance:1e-8
        ~preconditioner 800
    in
    let result = Kernels.Pcg.run_untraced params in
    let spec =
      Kernels.Pcg.spec ~iterations:result.Kernels.Pcg.iterations params
    in
    let cache = Cachesim.Config.profiling_4mb in
    let time =
      Core.Perf.app_time Core.Perf.default_machine ~cache
        ~flops:result.Kernels.Pcg.flops spec
    in
    (Core.Dvf.of_spec ~cache ~fit:5000.0 ~time spec).Core.Dvf.total
  in
  let cg_row =
    List.find
      (fun (r : Core.Experiments.fig6_row) -> r.Core.Experiments.n = 800)
      (Core.Experiments.fig6 ~sizes:[ 800 ] ())
  in
  Printf.printf
    "(d) PCG at n=800: vector-Jacobi DVF %.4g, dense-matrix-M DVF %.4g, \
     plain CG %.4g\n    (the dense auxiliary matrix inverts the Fig. 6 \
     conclusion)\n"
    (dvf_of `Vector) (dvf_of `Dense_matrix) cg_row.Core.Experiments.cg_dvf

(* --- Cache-capacity sweep (Fig. 5's x-axis at full resolution) --- *)

let run_sweep ~jobs ~telemetry ~tape ~store () =
  section_header "Cache-capacity sweep (DVF_a, 4KB..16MB, 8-way, 64B lines)";
  (* With tape reuse on, the sweep also runs the trace-driven simulator
     over every geometry — one captured tape per workload, all geometries
     driven by fused chunk walks — next to the analytic model. *)
  List.iter
    (fun workload ->
      let instance = Core.Workloads.profiling_instance workload in
      let rows =
        Core.Experiments.cache_sweep ~jobs ~telemetry ?store ~simulate:tape
          instance
      in
      Dvf_util.Table.print
        (Core.Experiments.cache_sweep_table
           ~label:instance.Core.Workload.label rows))
    [ Core.Workloads.vm; Core.Workloads.ft; Core.Workloads.mc ]

(* --- Tape reuse: capture-once/replay-many vs per-geometry retrace --- *)

let run_tape ~jobs ~telemetry () =
  section_header
    "Tape reuse - capture-once/replay-many vs per-geometry retrace (Fig. 4 \
     sweep)";
  let module T = Dvf_util.Telemetry in
  (* Each strategy runs against a forked collector so its counters and
     accumulators don't mix with the other strategies'; rates are read
     off the fork, then everything merges into the session collector for
     the BENCH_dvf.json snapshot. *)
  let run ?(jobs = jobs) ?shards strategy =
    let fork = T.fork telemetry in
    let t0 = Unix.gettimeofday () in
    let rows = Core.Verify.run_all ~jobs ~telemetry:fork ~strategy ?shards () in
    let seconds = Unix.gettimeofday () -. t0 in
    let rate counter span =
      let ns = T.span_ns fork span in
      if Int64.compare ns 0L > 0 then
        float_of_int (T.counter_value fork counter)
        /. (Int64.to_float ns /. 1e9)
      else 0.0
    in
    let sim_rate =
      match strategy with
      | Core.Verify.Retrace -> rate "recorder/events" "verify/trace_total"
      | Core.Verify.Replay | Core.Verify.Fused | Core.Verify.Sharded ->
          rate "tape/replay_events" "verify/replay_total"
    in
    (* Engine-side throughput summed over shard domains (each shard task
       walks the full stream for every cache it owns sets of); zero for
       the unsharded strategies, and equal to [sim_rate] at one shard. *)
    let walked_rate = rate "shard/walked_events" "verify/replay_total" in
    T.merge ~into:telemetry fork;
    (rows, seconds, sim_rate, walked_rate)
  in
  let retrace_rows, retrace_s, retrace_rate, _ = run Core.Verify.Retrace in
  let replay_rows, replay_s, replay_rate, _ = run Core.Verify.Replay in
  let fused_rows, fused_s, fused_rate, _ = run Core.Verify.Fused in
  let sharded_rows, sharded_s, sharded_rate, _ = run Core.Verify.Sharded in
  let t =
    Dvf_util.Table.create
      ~title:
        "Verification sweep, four strategies (identical rows, -j \
         honoured)"
      [
        ("strategy", Dvf_util.Table.Left);
        ("wall s", Dvf_util.Table.Right);
        ("sim events/sec", Dvf_util.Table.Right);
        ("vs retrace", Dvf_util.Table.Right);
      ]
  in
  List.iter
    (fun (name, seconds, r) ->
      Dvf_util.Table.add_row t
        [
          name;
          Printf.sprintf "%.3f" seconds;
          Printf.sprintf "%.3g" r;
          Printf.sprintf "%.2fx"
            (if retrace_rate > 0.0 then r /. retrace_rate else 0.0);
        ])
    [
      ("retrace (baseline)", retrace_s, retrace_rate);
      ("replay", replay_s, replay_rate);
      ("fused", fused_s, fused_rate);
      ("sharded", sharded_s, sharded_rate);
    ];
  Dvf_util.Table.print t;
  Printf.printf "rows bit-identical across strategies: %s\n"
    (if
       retrace_rows = replay_rows
       && replay_rows = fused_rows
       && fused_rows = sharded_rows
     then "yes"
     else "NO");
  (* Surface the comparison in the snapshot regardless of which sections
     ran before or after. *)
  if T.enabled telemetry then begin
    T.set_gauge telemetry "bench/retrace_events_per_sec" retrace_rate;
    T.set_gauge telemetry "bench/replay_events_per_sec" replay_rate;
    T.set_gauge telemetry "bench/fused_events_per_sec" fused_rate;
    T.set_gauge telemetry "bench/sharded_events_per_sec" sharded_rate
  end;
  (* Sharded scaling: the single-domain legacy fused walk is the baseline
     the ROADMAP's events/sec target is measured against; the sharded
     engine combines set-partitioned domain parallelism with its
     specialized early-exit kernel, and is measured here on >= 4 domains
     (each shard task is a domain's unit of work). *)
  let shard_domains = max 4 jobs in
  let fused1_rows, fused1_s, fused1_rate, _ = run ~jobs:1 Core.Verify.Fused in
  let shardn_rows, shardn_s, shardn_rate, shardn_walked =
    run ~jobs:shard_domains ~shards:shard_domains Core.Verify.Sharded
  in
  (* Two rates per walk: "logical" divides the stream each cache consumed
     once by replay wall-clock; "aggregate" divides the event-walks the
     engine performed across all its shard domains by the same wall-clock
     (a 1-domain fused walk performs exactly one walk, so both rates
     coincide for the baseline).  On a box with >= shard_domains cores
     the logical rate converges to the aggregate; the aggregate is the
     machine-independent engine throughput. *)
  let t =
    Dvf_util.Table.create
      ~title:
        (Printf.sprintf
           "Sharded fused scaling (set-partitioned, %d shards on %d domains)"
           shard_domains shard_domains)
      [
        ("walk", Dvf_util.Table.Left);
        ("wall s", Dvf_util.Table.Right);
        ("logical events/sec", Dvf_util.Table.Right);
        ("aggregate events/sec", Dvf_util.Table.Right);
        ("agg speedup", Dvf_util.Table.Right);
      ]
  in
  List.iter
    (fun (name, seconds, logical, aggregate) ->
      Dvf_util.Table.add_row t
        [
          name;
          Printf.sprintf "%.3f" seconds;
          Printf.sprintf "%.3g" logical;
          Printf.sprintf "%.3g" aggregate;
          Printf.sprintf "%.2fx"
            (if fused1_rate > 0.0 then aggregate /. fused1_rate else 0.0);
        ])
    [
      ("fused, 1 domain (baseline)", fused1_s, fused1_rate, fused1_rate);
      ( Printf.sprintf "sharded, %d domains" shard_domains,
        shardn_s,
        shardn_rate,
        shardn_walked );
    ];
  Dvf_util.Table.print t;
  Printf.printf "sharded rows bit-identical to serial fused: %s\n"
    (if fused1_rows = shardn_rows then "yes" else "NO");
  if T.enabled telemetry then begin
    T.set_gauge telemetry "bench/fused_1dom_events_per_sec" fused1_rate;
    T.set_gauge telemetry "bench/sharded_scaling_events_per_sec" shardn_walked;
    (* The sharded engine walks pre-partitioned chunk views since the
       partition-index work; this gauge names the partitioned rate
       explicitly so snapshots before and after that change compare. *)
    T.set_gauge telemetry "bench/sharded_partitioned_events_per_sec"
      shardn_walked;
    T.set_gauge telemetry "bench/shard_domains" (float_of_int shard_domains)
  end;
  (* Per-level hierarchy throughput: a two-level run reports each level's
     served accesses over the same replay wall-clock. *)
  let levels = 2 in
  let fork = T.fork telemetry in
  let t0 = Unix.gettimeofday () in
  let (_ : Core.Verify.level_row list) =
    Core.Verify.run_all_levels ~jobs ~telemetry:fork
      ~strategy:Core.Verify.Fused ~levels ()
  in
  let hier_s = Unix.gettimeofday () -. t0 in
  let level_counter fmt level = T.counter_value fork (Printf.sprintf fmt level) in
  let t =
    Dvf_util.Table.create
      ~title:
        (Printf.sprintf
           "L1/L2 write-back hierarchy (verification sweep, %d levels, \
            %.3f s)"
           levels hier_s)
      [
        ("level", Dvf_util.Table.Left);
        ("accesses", Dvf_util.Table.Right);
        ("misses", Dvf_util.Table.Right);
        ("writebacks", Dvf_util.Table.Right);
        ("accesses/sec", Dvf_util.Table.Right);
      ]
  in
  for level = 1 to levels do
    let accesses = level_counter "hierarchy/l%d/accesses" level in
    let rate =
      if hier_s > 0.0 then float_of_int accesses /. hier_s else 0.0
    in
    Dvf_util.Table.add_row t
      [
        Printf.sprintf "L%d" level;
        Printf.sprintf "%d" accesses;
        Printf.sprintf "%d" (level_counter "hierarchy/l%d/misses" level);
        Printf.sprintf "%d" (level_counter "hierarchy/l%d/writebacks" level);
        Printf.sprintf "%.3g" rate;
      ];
    if T.enabled telemetry then
      T.set_gauge telemetry
        (Printf.sprintf "bench/level%d_accesses_per_sec" level)
        rate
  done;
  Dvf_util.Table.print t;
  let l1_out =
    level_counter "hierarchy/l%d/misses" 1
    + level_counter "hierarchy/l%d/writebacks" 1
  in
  Printf.printf "L2 accesses = L1 misses + L1 writebacks: %s\n"
    (if level_counter "hierarchy/l%d/accesses" 2 = l1_out then "yes" else "NO");
  T.merge ~into:telemetry fork;
  if T.enabled telemetry then
    T.set_gauge telemetry "bench/hierarchy_levels" (float_of_int levels);
  (* Timed replay: residency tracking swaps the specialized unsafe loops
     for a per-event logical clock; measure what that costs against the
     untimed replay rate above. *)
  let fork = T.fork telemetry in
  let t0 = Unix.gettimeofday () in
  let (_ : Core.Verify.time_row list) =
    Core.Verify.run_all_timed ~jobs ~telemetry:fork ()
  in
  let timed_s = Unix.gettimeofday () -. t0 in
  let timed_rate =
    let ns = T.span_ns fork "verify/timed_total" in
    if Int64.compare ns 0L > 0 then
      float_of_int (T.counter_value fork "tape/timed_replay_events")
      /. (Int64.to_float ns /. 1e9)
    else 0.0
  in
  T.merge ~into:telemetry fork;
  Printf.printf
    "timed replay (per-line residency): %.3f s wall, %.3g events/sec \
     (%.2fx of untimed replay)\n"
    timed_s timed_rate
    (if replay_rate > 0.0 then timed_rate /. replay_rate else 0.0);
  if T.enabled telemetry then
    T.set_gauge telemetry "bench/timed_replay_events_per_sec" timed_rate;
  (* On-disk load: eager per-chunk decode vs the default lazy mmap
     adoption (.dvftape v2).  Both paths verify the full payload
     checksum; the lazy path defers the addr/meta array decode until a
     replay touches each chunk, so load returns after the header walk
     and one streaming pass over the mapping.  Best-of-N wall times
     keep the ratio stable against page-cache noise. *)
  let cap =
    Core.Verify.capture
      (Core.Workloads.verification_instance Core.Workloads.cg)
  in
  let tmp = Filename.temp_file "dvf_bench" ".dvftape" in
  Fun.protect ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
  @@ fun () ->
  Memtrace.Tape_io.save ~path:tmp
    ~meta:
      {
        Memtrace.Tape_io.workload = cap.Core.Verify.instance.Core.Workload.workload;
        size = cap.Core.Verify.instance.Core.Workload.label;
        seed = 0;
      }
    ~registry:cap.Core.Verify.registry ~tape:cap.Core.Verify.tape;
  let best_of n f =
    let best = ref infinity in
    for _ = 1 to n do
      let t0 = Unix.gettimeofday () in
      (match f () with
      | Ok (_, _, (tape : Memtrace.Tape.t)) -> ignore (Memtrace.Tape.length tape)
      | Error e -> failwith (Memtrace.Tape_io.error_to_string e));
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let reps = 5 in
  let eager_s = best_of reps (fun () -> Memtrace.Tape_io.load ~eager:true tmp) in
  let lazy_s = best_of reps (fun () -> Memtrace.Tape_io.load ~telemetry tmp) in
  let speedup = if lazy_s > 0.0 then eager_s /. lazy_s else 0.0 in
  Printf.printf
    "tape load (%s, %d events): eager %.4f s, lazy mmap %.4f s -> %.2fx\n"
    cap.Core.Verify.instance.Core.Workload.workload
    (Memtrace.Tape.length cap.Core.Verify.tape)
    eager_s lazy_s speedup;
  if T.enabled telemetry then begin
    T.set_gauge telemetry "bench/tape_load_eager_sec" eager_s;
    T.set_gauge telemetry "bench/tape_load_mmap_sec" lazy_s;
    T.set_gauge telemetry "bench/tape_load_mmap_speedup" speedup
  end

(* --- Extensions: sparse CG and cache-component DVF --- *)

let run_sparse () =
  section_header "Extension: sparse CG (NPB CG's CSR shape)";
  (* Verification of the sparse model against the simulator. *)
  let p =
    Kernels.Sparse_cg.make_params ~max_iterations:8 ~tolerance:0.0
      (`Laplacian_2d 64)
  in
  let t =
    Dvf_util.Table.create ~title:"Sparse CG model verification (Fig. 4 methodology)"
      [
        ("cache", Dvf_util.Table.Left); ("simulated", Dvf_util.Table.Right);
        ("modeled", Dvf_util.Table.Right); ("error %", Dvf_util.Table.Right);
      ]
  in
  List.iter
    (fun cfg ->
      let registry = Memtrace.Region.create () in
      let recorder = Memtrace.Recorder.create () in
      let cache = Cachesim.Cache.create cfg in
      ignore
        (Memtrace.Recorder.add_sink recorder (Memtrace.Recorder.cache_sink cache));
      let result = Kernels.Sparse_cg.run registry recorder p in
      Cachesim.Cache.flush cache;
      let snap = Cachesim.Stats.snapshot (Cachesim.Cache.stats cache) in
      let spec =
        Kernels.Sparse_cg.spec ~iterations:result.Kernels.Sparse_cg.iterations p
      in
      let modeled =
        Access_patterns.App_spec.main_memory_accesses ~cache:cfg spec
      in
      let sim = ref 0.0 and model = ref 0.0 in
      List.iter
        (fun (name, m) ->
          let region = Memtrace.Region.lookup registry name in
          sim :=
            !sim
            +. float_of_int
                 (Cachesim.Stats.Snapshot.owner_main_memory snap
                    region.Memtrace.Region.id);
          model := !model +. m)
        modeled;
      Dvf_util.Table.add_row t
        [
          cfg.Cachesim.Config.name; Printf.sprintf "%.0f" !sim;
          Printf.sprintf "%.0f" !model;
          Printf.sprintf "%.1f"
            (100.0 *. Dvf_util.Maths.rel_error ~expected:!sim ~actual:!model);
        ])
    Cachesim.Config.verification_set;
  Dvf_util.Table.print t;
  (* Storage-format comparison: same tridiagonal system, dense vs CSR. *)
  let n = 800 and iterations = 20 in
  let cache = Cachesim.Config.profiling_4mb in
  let dvf spec flops =
    let time = Core.Perf.app_time Core.Perf.default_machine ~cache ~flops spec in
    (Core.Dvf.of_spec ~cache ~fit:5000.0 ~time spec).Core.Dvf.total
  in
  let dense_spec = Kernels.Cg.spec ~iterations (Kernels.Cg.make_params n) in
  let sparse_params = Kernels.Sparse_cg.make_params (`Tridiagonal n) in
  let sparse_spec = Kernels.Sparse_cg.spec ~iterations sparse_params in
  let sparse_nnz = (Kernels.Sparse_cg.run_untraced sparse_params).Kernels.Sparse_cg.nnz in
  Printf.printf
    "Same tridiagonal system, %d iterations: dense DVF_a %.4g, CSR DVF_a %.4g\n\
     (the sparse format carries %d nonzeros instead of %d entries — the\n\
     working-set term of Eq. 1 rewards compact storage)\n"
    iterations
    (dvf dense_spec (iterations * 4 * n * n))
    (dvf sparse_spec (iterations * 4 * sparse_nnz))
    sparse_nnz (n * n)

let run_component () =
  section_header "Extension: DVF for the cache component (paper SS I)";
  let cache = Cachesim.Config.profiling_4mb in
  List.iter
    (fun workload ->
      let instance = Core.Workloads.profiling_instance workload in
      let time =
        Core.Perf.app_time Core.Perf.default_machine ~cache
          ~flops:instance.Core.Workload.flops instance.Core.Workload.spec
      in
      Dvf_util.Table.print
        (Core.Component.to_table
           (Core.Component.both ~cache ~time instance.Core.Workload.spec)))
    (Core.Workloads.all ())

(* --- Fault injection vs DVF --- *)

let run_inject ~jobs ~telemetry () =
  section_header
    "Fault injection vs DVF (the comparator methodology, paper SS I / SS VI)";
  let cache = Cachesim.Config.profiling_4mb in
  (* All six registered workloads through the injection subsystem, trials
     fanned out over [jobs] domains. *)
  let start = Unix.gettimeofday () in
  let results = Core.Injection.run_all ~jobs ~telemetry (Core.Workloads.all ()) in
  let inject_seconds = Unix.gettimeofday () -. start in
  List.iter
    (fun r -> Dvf_util.Table.print (Core.Injection.to_table r))
    results;
  let corr = Core.Injection.correlate ~cache results in
  Dvf_util.Table.print (Core.Injection.correlation_table corr);
  Format.printf "%a" Core.Injection.pp_spearman corr;
  (* VM: empirical strikes arrive proportionally to a structure's size
     and exposure time; the injection-implied vulnerability is therefore
     S_d * P(strike corrupts).  DVF's claim is that its exposure product
     ranks structures the same way. *)
  let vm_result =
    List.find (fun r -> r.Core.Injection.workload = "VM") results
  in
  let vm_spec = vm_result.Core.Injection.spec in
  let vm_dvf = Core.Dvf.of_spec ~cache ~fit:5000.0 ~time:1e-4 vm_spec in
  let implied =
    List.map
      (fun (c : Kernels.Fault_injection.campaign) ->
        let bytes =
          List.assoc c.Kernels.Fault_injection.structure
            (Access_patterns.App_spec.structure_bytes vm_spec)
        in
        ( c.Kernels.Fault_injection.structure,
          float_of_int bytes *. Kernels.Fault_injection.sdc_rate c ))
      vm_result.Core.Injection.campaigns
  in
  let dvf_rank =
    List.map
      (fun (s : Core.Dvf.structure_dvf) -> s.Core.Dvf.name)
      (Core.Selective.rank vm_dvf)
  in
  Printf.printf
    "VM injection-implied vulnerability (S_d x SDC rate): %s; DVF: %s\n\
     (the implied scores are near-tied: strikes arrive per byte, and the\n\
     per-strike masking -- A's 3/4 dead stride, C's flips on still-zero\n\
     output -- cancels the S_d differences DVF's exposure product\n\
     surfaces)\n"
    (String.concat ", "
       (List.map (fun (s, v) -> Printf.sprintf "%s=%.0f" s v) implied))
    (String.concat " > " dvf_rank);
  (* CG: per-strike corruption probabilities expose what DVF abstracts
     away -- logical masking (A's flips mostly vanish into the solve) and
     algorithmic self-correction (p's corruption is detected, not
     silent). *)
  Printf.printf
    "CG: x (accumulator) is the most SDC-prone per strike; p's corruption\n\
     is caught by non-convergence; A is heavily logically masked -- the\n\
     application-semantics effect DVF's exposure metric deliberately\n\
     abstracts away (SS VI: injection 'cannot quantitatively compare ...\n\
     components' without huge trial counts).\n";
  (* The cost argument: one campaign vs one model evaluation. *)
  let start_model = Unix.gettimeofday () in
  for _ = 1 to 1000 do
    ignore (Access_patterns.App_spec.main_memory_accesses ~cache vm_spec)
  done;
  let model_seconds = (Unix.gettimeofday () -. start_model) /. 1000.0 in
  let total_trials =
    List.fold_left
      (fun acc r ->
        List.fold_left
          (fun acc (c : Kernels.Fault_injection.campaign) ->
            acc + c.Kernels.Fault_injection.trials)
          acc r.Core.Injection.campaigns)
      0 results
  in
  Printf.printf
    "cost: %d injection trials took %.2f s (-j %d); one DVF model \
     evaluation %.2e s (%.0fx)\n"
    total_trials inject_seconds jobs model_seconds
    (inject_seconds /. model_seconds)

(* --- Chaos: component-kill campaigns over the service graph --- *)

let run_chaos ~jobs ~telemetry () =
  section_header "Chaos campaigns - component kills over the service graph";
  let w = Core.Service_workloads.workload () in
  let trials = 2000 in
  let start = Unix.gettimeofday () in
  let report =
    match Core.Chaos.run ~jobs ~telemetry ~trials w with
    | Some r -> r
    | None -> failwith "service_graph workload lost its topology"
  in
  let chaos_seconds = Unix.gettimeofday () -. start in
  Dvf_util.Table.print (Core.Chaos.to_table report);
  Format.printf "%a" Core.Chaos.pp_summary report;
  let total_trials =
    List.fold_left
      (fun acc (r : Core.Chaos.row) -> acc + r.Core.Chaos.trials)
      0 report.Core.Chaos.rows
  in
  let trial_rate =
    if chaos_seconds > 0.0 then float_of_int total_trials /. chaos_seconds
    else 0.0
  in
  Printf.printf "%d kill trials in %.3f s = %.0f trials/sec (-j %d)\n"
    total_trials chaos_seconds trial_rate jobs;
  (* The synthesized request traffic through the verification cache — the
     replay feeding the availability-vs-DVF comparison above. *)
  let inst = w.Core.Workload.instance `Verification in
  let cache = Cachesim.Cache.create Cachesim.Config.small_verification in
  let registry = Memtrace.Region.create () in
  let recorder = Memtrace.Recorder.create () in
  ignore
    (Memtrace.Recorder.add_sink recorder (Memtrace.Recorder.cache_sink cache));
  let t0 = Unix.gettimeofday () in
  inst.Core.Workload.trace registry recorder;
  Memtrace.Recorder.flush recorder;
  let trace_seconds = Unix.gettimeofday () -. t0 in
  let events = Memtrace.Recorder.events_emitted recorder in
  let event_rate =
    if trace_seconds > 0.0 then float_of_int events /. trace_seconds else 0.0
  in
  Printf.printf
    "service-graph traffic: %d events in %.3f s = %.2e events/sec\n" events
    trace_seconds event_rate;
  if Dvf_util.Telemetry.enabled telemetry then begin
    Dvf_util.Telemetry.set_gauge telemetry "bench/chaos_trials_per_sec"
      trial_rate;
    Dvf_util.Telemetry.set_gauge telemetry
      "bench/service_graph_replay_events_per_sec" event_rate
  end

(* --- Aspen DSL end-to-end --- *)

let run_aspen () =
  section_header "Extended-Aspen DSL (builtin models on builtin machines)";
  let file = Aspen.Builtin_models.load () in
  let machines = [ "small_verif"; "prof_16kb"; "prof_8mb" ] in
  let t =
    Dvf_util.Table.create ~title:"DVF_a computed from the DSL models"
      (("app", Dvf_util.Table.Left)
      :: List.map (fun m -> (m, Dvf_util.Table.Right)) machines)
  in
  List.iter
    (fun app_name ->
      let cells =
        List.map
          (fun machine_name ->
            let machine = Aspen.Compile.find_machine file machine_name in
            let app = Aspen.Compile.find_app file app_name in
            Dvf_util.Table.cell_float (Aspen.Compile.dvf machine app).Core.Dvf.total)
          machines
      in
      Dvf_util.Table.add_row t (app_name :: cells))
    [ "vm"; "cg"; "nb"; "mg"; "ft"; "mc" ];
  Dvf_util.Table.print t;
  (* Cross-check: the DSL's VM model against the OCaml-API spec. *)
  let machine = Aspen.Compile.find_machine file "prof_8mb" in
  let dsl_app = Aspen.Compile.find_app file "vm" in
  let dsl_nha =
    Access_patterns.App_spec.main_memory_accesses ~cache:machine.Aspen.Compile.cache
      dsl_app.Aspen.Compile.spec
  in
  let api_nha =
    Access_patterns.App_spec.main_memory_accesses ~cache:machine.Aspen.Compile.cache
      (Kernels.Vm.spec Kernels.Vm.profiling)
  in
  Printf.printf "DSL vs OCaml API, VM N_ha on prof_8mb: %s\n"
    (if List.for_all2
          (fun (_, a) (_, b) -> Dvf_util.Maths.approx_equal ~eps:1e-9 a b)
          dsl_nha api_nha
     then "identical"
     else "MISMATCH")

(* --- Serve: query-daemon request throughput --- *)

let run_serve ~jobs ~telemetry ~store () =
  section_header "Query daemon - dvf serve request throughput";
  let srv = Core.Serve.create ~telemetry ?store ~jobs () in
  Fun.protect
    ~finally:(fun () -> Core.Serve.shutdown srv)
    (fun () ->
      let t0 = Unix.gettimeofday () in
      Core.Serve.warm srv;
      let warm_s = Unix.gettimeofday () -. t0 in
      Printf.printf "warmed %d workloads in %.3f s%s\n"
        (Core.Serve.warm_count srv) warm_s
        (match store with Some _ -> " (tape store on)" | None -> "");
      (* One batch mixes a replay-heavy op (verify: full fused tape walk
         over the verification set) and a model op (dvf: analytic
         profile) over every served workload — the shape a monitoring
         client would send — spread over the pool by handle_batch. *)
      let names = Core.Serve.workload_names srv in
      let batch =
        List.concat
          (List.mapi
             (fun i name ->
               List.map
                 (fun op ->
                   Printf.sprintf {|{"id":%d,"op":"%s","workload":"%s"}|} i op
                     name)
                 [ "verify"; "dvf" ])
             names)
      in
      (* Untimed pass so the measured rounds hit only warm state. *)
      ignore (Core.Serve.handle_batch srv batch);
      let rounds = 2 in
      let t0 = Unix.gettimeofday () in
      for _ = 1 to rounds do
        ignore (Core.Serve.handle_batch srv batch)
      done;
      let seconds = Unix.gettimeofday () -. t0 in
      let total = rounds * List.length batch in
      let rate = if seconds > 0.0 then float_of_int total /. seconds else 0.0 in
      Printf.printf
        "%d requests (%d batches of %d) in %.3f s = %.1f requests/sec (-j %d)\n"
        total rounds (List.length batch) seconds rate jobs;
      if Dvf_util.Telemetry.enabled telemetry then
        Dvf_util.Telemetry.set_gauge telemetry "bench/serve_requests_per_sec"
          rate)

(* --- Speed: analytical models vs cache simulation --- *)

let run_speed () =
  section_header "Evaluation cost: analytical models vs trace-driven simulation";
  let open Bechamel in
  let cache = Cachesim.Config.small_verification in
  let vm = Kernels.Vm.verification in
  let vm_spec = Kernels.Vm.spec vm in
  let cg_instance = Core.Workloads.verification_instance Core.Workloads.cg in
  let mc = Kernels.Monte_carlo.verification in
  let mc_spec = Kernels.Monte_carlo.spec mc in
  let tests =
    Test.make_grouped ~name:"dvf" ~fmt:"%s %s"
      [
        Test.make ~name:"model: VM streaming spec"
          (Staged.stage (fun () ->
               ignore
                 (Access_patterns.App_spec.main_memory_accesses ~cache vm_spec)));
        Test.make ~name:"model: CG composition spec"
          (Staged.stage (fun () ->
               ignore
                 (Access_patterns.App_spec.main_memory_accesses ~cache
                    cg_instance.Core.Workload.spec)));
        Test.make ~name:"model: MC random spec"
          (Staged.stage (fun () ->
               ignore
                 (Access_patterns.App_spec.main_memory_accesses ~cache mc_spec)));
        Test.make ~name:"simulation: VM trace + LRU cache"
          (Staged.stage (fun () ->
               let registry = Memtrace.Region.create () in
               let recorder = Memtrace.Recorder.create () in
               let c = Cachesim.Cache.create cache in
               ignore
                 (Memtrace.Recorder.add_sink recorder
                    (Memtrace.Recorder.cache_sink c));
               ignore (Kernels.Vm.run registry recorder vm)));
        Test.make ~name:"simulation: MC trace + LRU cache"
          (Staged.stage (fun () ->
               let registry = Memtrace.Region.create () in
               let recorder = Memtrace.Recorder.create () in
               let c = Cachesim.Cache.create cache in
               ignore
                 (Memtrace.Recorder.add_sink recorder
                    (Memtrace.Recorder.cache_sink c));
               ignore (Kernels.Monte_carlo.run registry recorder mc)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some (est :: _) -> rows := (name, est) :: !rows
      | _ -> ())
    results;
  let t =
    Dvf_util.Table.create
      ~title:
        "Time per evaluation (the paper: model cost is 'seconds' vs hours of \
         simulation/fault injection)"
      [ ("evaluation", Dvf_util.Table.Left); ("ns/run", Dvf_util.Table.Right) ]
  in
  List.iter
    (fun (name, est) ->
      Dvf_util.Table.add_row t [ name; Printf.sprintf "%.0f" est ])
    (List.sort (fun (_, a) (_, b) -> compare a b) !rows);
  Dvf_util.Table.print t

let sections =
  [
    ("tables", fun ~jobs:_ ~telemetry:_ ~tape:_ ~store:_ () -> run_tables ());
    ("fig4", run_fig4);
    ("fig5", fun ~jobs:_ ~telemetry:_ ~tape:_ ~store:_ () -> run_fig5 ());
    ( "fig6",
      fun ~jobs ~telemetry ~tape:_ ~store:_ () -> run_fig6 ~jobs ~telemetry ()
    );
    ("fig7", fun ~jobs:_ ~telemetry:_ ~tape:_ ~store:_ () -> run_fig7 ());
    ("sweep", run_sweep);
    ( "tape",
      fun ~jobs ~telemetry ~tape:_ ~store:_ () -> run_tape ~jobs ~telemetry ()
    );
    ( "ablation",
      fun ~jobs:_ ~telemetry:_ ~tape:_ ~store:_ () -> run_ablation () );
    ("sparse", fun ~jobs:_ ~telemetry:_ ~tape:_ ~store:_ () -> run_sparse ());
    ( "component",
      fun ~jobs:_ ~telemetry:_ ~tape:_ ~store:_ () -> run_component () );
    ( "inject",
      fun ~jobs ~telemetry ~tape:_ ~store:_ () -> run_inject ~jobs ~telemetry ()
    );
    ( "chaos",
      fun ~jobs ~telemetry ~tape:_ ~store:_ () -> run_chaos ~jobs ~telemetry ()
    );
    ("aspen", fun ~jobs:_ ~telemetry:_ ~tape:_ ~store:_ () -> run_aspen ());
    ("speed", fun ~jobs:_ ~telemetry:_ ~tape:_ ~store:_ () -> run_speed ());
    ( "serve",
      fun ~jobs ~telemetry ~tape:_ ~store () -> run_serve ~jobs ~telemetry ~store ()
    );
  ]

(* BENCH_dvf.json: the machine-readable counterpart of the tables above.
   One flat header (command, cache geometry, jobs, wall-clock, trace
   events/sec) plus the whole telemetry document, so downstream tooling
   never parses the pretty-printed output. *)
let write_bench_snapshot ~command ~jobs ~tape ~store_dir ~wall_clock_sec
    telemetry =
  let module J = Dvf_util.Json in
  let module T = Dvf_util.Telemetry in
  let rate counter span =
    let ns = T.span_ns telemetry span in
    if Int64.compare ns 0L > 0 then
      J.Float
        (float_of_int (T.counter_value telemetry counter)
        /. (Int64.to_float ns /. 1e9))
    else J.Null
  in
  (* Simulation throughput of whichever path ran: tape replay when tape
     reuse is on, the combined kernel+simulation rate otherwise.  The
     per-phase fields below carry both so two snapshots (with and without
     [--no-tape]) are directly comparable. *)
  let retrace_rate = rate "recorder/events" "verify/trace_total" in
  let replay_rate = rate "tape/replay_events" "verify/replay_total" in
  let events_per_sec = if tape then replay_rate else retrace_rate in
  let gauge name =
    match T.gauge_value telemetry name with
    | Some v -> J.Float v
    | None -> J.Null
  in
  let gauge_int name =
    match T.gauge_value telemetry name with
    | Some v -> J.Int (int_of_float v)
    | None -> J.Null
  in
  let geometry =
    J.List
      (List.map
         (fun (c : Cachesim.Config.t) ->
           J.Obj
             [
               ("name", J.Str c.Cachesim.Config.name);
               ("associativity", J.Int c.Cachesim.Config.associativity);
               ("sets", J.Int c.Cachesim.Config.sets);
               ("line_bytes", J.Int c.Cachesim.Config.line);
               ("capacity_bytes", J.Int (Cachesim.Config.capacity c));
             ])
         (Cachesim.Config.verification_set @ Cachesim.Config.profiling_set))
  in
  let doc =
    J.Obj
      [
        ("schema", J.Str "dvf-bench");
        ("schema_version", J.Int T.schema_version);
        ("command", J.Str command);
        ("geometry", geometry);
        ("jobs", J.Int jobs);
        ("tape_reuse", J.Bool tape);
        ("wall_clock_sec", J.Float wall_clock_sec);
        ("events_per_sec", events_per_sec);
        ("retrace_events_per_sec", retrace_rate);
        ("replay_events_per_sec", replay_rate);
        ("capture_events_per_sec", rate "tape/capture_events" "verify/capture_total");
        (* Sharded scaling and per-level hierarchy rates, measured by the
           tape section (gauges are absent — Null here — when that
           section did not run).  [sharded_events_per_sec] is the
           aggregate engine rate over all shard domains; the 1-domain
           fused baseline's aggregate and logical rates coincide. *)
        ("fused_events_per_sec", gauge "bench/fused_1dom_events_per_sec");
        ("sharded_events_per_sec", gauge "bench/sharded_scaling_events_per_sec");
        (* Partition-index era fields: the sharded engine's aggregate rate
           over pre-partitioned chunk views, the chunks those views let
           shard tasks skip outright, and the eager-vs-mmap load ratio
           measured by the tape section (Null when it did not run). *)
        ( "sharded_partitioned_events_per_sec",
          gauge "bench/sharded_partitioned_events_per_sec" );
        ( "tape_chunks_skipped",
          J.Int (T.counter_value telemetry "tape/chunks_skipped") );
        ("tape_load_mmap_speedup", gauge "bench/tape_load_mmap_speedup");
        ("shards", gauge_int "bench/shard_domains");
        ("levels", gauge_int "bench/hierarchy_levels");
        ("level1_accesses_per_sec", gauge "bench/level1_accesses_per_sec");
        ("level2_accesses_per_sec", gauge "bench/level2_accesses_per_sec");
        (* Residency-tracking replay (the timed walk behind `dvf verify
           --time-weighted` and `dvf windows`). *)
        ( "timed_replay_events_per_sec",
          gauge "bench/timed_replay_events_per_sec" );
        (* Persistent tape store traffic (zero when --tape-store is off)
           and the serve section's request throughput (Null when that
           section did not run). *)
        ( "tape_store",
          match store_dir with Some d -> J.Str d | None -> J.Null );
        ("store_hits", J.Int (T.counter_value telemetry "store/hits"));
        ("store_misses", J.Int (T.counter_value telemetry "store/misses"));
        ( "store_load_bytes",
          J.Int (T.counter_value telemetry "store/load_bytes") );
        ( "store_save_bytes",
          J.Int (T.counter_value telemetry "store/save_bytes") );
        ("serve_requests_per_sec", gauge "bench/serve_requests_per_sec");
        (* Chaos section rates (Null when that section did not run):
           component-kill campaign throughput and the service-graph
           synthesized-traffic replay rate. *)
        ("chaos_trials_per_sec", gauge "bench/chaos_trials_per_sec");
        ( "service_graph_replay_events_per_sec",
          gauge "bench/service_graph_replay_events_per_sec" );
        ("telemetry", T.to_json telemetry);
      ]
  in
  let oc = open_out "BENCH_dvf.json" in
  output_string oc (J.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.eprintf "performance snapshot written to BENCH_dvf.json\n"

let usage_error message =
  Printf.eprintf "%s (available sections: %s)\n" message
    (String.concat " " (List.map fst sections));
  exit 1

let () =
  (* Parse [-j N]/[--jobs N] out of the argument list; the rest are section
     names.  Validate every section up front so a typo exits non-zero
     before anything runs, instead of failing halfway through a sweep. *)
  let jobs = ref (Dvf_util.Parallel.recommended_jobs ()) in
  let tape = ref true in
  let store_dir = ref None in
  let rec parse acc = function
    | [] -> List.rev acc
    | ("-j" | "--jobs") :: value :: rest -> (
        match int_of_string_opt value with
        | Some n when n > 0 ->
            jobs := n;
            parse acc rest
        | _ -> usage_error (Printf.sprintf "bad job count %S" value))
    | [ ("-j" | "--jobs") ] -> usage_error "-j expects a positive integer"
    | "--no-tape" :: rest ->
        (* Per-geometry retrace everywhere a tape would be reused — the
           measurable baseline for the capture-once/replay-many path. *)
        tape := false;
        parse acc rest
    | "--tape-store" :: dir :: rest ->
        store_dir := Some dir;
        parse acc rest
    | [ "--tape-store" ] -> usage_error "--tape-store expects a directory"
    | name :: rest -> parse (name :: acc) rest
  in
  let requested =
    match parse [] (List.tl (Array.to_list Sys.argv)) with
    | [] -> List.map fst sections
    | names -> names
  in
  let runs =
    List.map
      (fun name ->
        match List.assoc_opt name sections with
        | Some run -> run
        | None -> usage_error (Printf.sprintf "unknown section '%s'" name))
      requested
  in
  let telemetry = Dvf_util.Telemetry.create () in
  let store =
    Option.map
      (fun dir -> Memtrace.Tape_store.create ~telemetry ~dir ())
      !store_dir
  in
  let start = Unix.gettimeofday () in
  List.iter (fun run -> run ~jobs:!jobs ~telemetry ~tape:!tape ~store ()) runs;
  write_bench_snapshot
    ~command:(String.concat " " (Array.to_list Sys.argv))
    ~jobs:!jobs ~tape:!tape ~store_dir:!store_dir
    ~wall_clock_sec:(Unix.gettimeofday () -. start)
    telemetry
